#include "campaign/dispatch.hpp"

#include <sys/wait.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>

#include "campaign/report.hpp"
#include "snapshot/state_io.hpp"

namespace hs::campaign {

namespace {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKill: return "kill";
    case FaultKind::kTruncateBytes: return "trunc";
    case FaultKind::kTruncateLines: return "truncl";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kCorrupt: return "corrupt";
  }
  return "?";
}

bool fault_kind_from_name(std::string_view name, FaultKind* out) {
  for (FaultKind k : {FaultKind::kKill, FaultKind::kTruncateBytes,
                      FaultKind::kTruncateLines, FaultKind::kDelay,
                      FaultKind::kCorrupt}) {
    if (fault_kind_name(k) == name) {
      *out = k;
      return true;
    }
  }
  return false;
}

std::size_t parse_fault_u64(std::string_view text, std::string_view token) {
  const std::string digits(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(digits.c_str(), &end, 10);
  if (digits.empty() || end != digits.c_str() + digits.size() ||
      errno == ERANGE) {
    throw DispatchError("fault-plan: bad number '" + digits + "' in '" +
                        std::string(token) + "'");
  }
  return static_cast<std::size_t>(v);
}

/// Byte offsets of the starts of complete (newline-terminated) lines,
/// plus one-past-the-last such line.
std::vector<std::size_t> line_starts(std::string_view text) {
  std::vector<std::size_t> starts = {0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find_first_of(",;", start);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view token = spec.substr(start, end - start);
    start = end + 1;
    while (!token.empty() && (token.front() == ' ' || token.front() == '\t'))
      token.remove_prefix(1);
    while (!token.empty() && (token.back() == ' ' || token.back() == '\t'))
      token.remove_suffix(1);
    if (token.empty()) continue;
    const std::size_t colon = token.find(':');
    const std::size_t at = token.find('@');
    if (colon == std::string_view::npos || at == std::string_view::npos ||
        at < colon) {
      throw DispatchError("fault-plan: token '" + std::string(token) +
                          "' is not kind:shard@arg");
    }
    Fault f;
    if (!fault_kind_from_name(token.substr(0, colon), &f.kind)) {
      throw DispatchError("fault-plan: unknown fault kind '" +
                          std::string(token.substr(0, colon)) +
                          "' (kill, trunc, truncl, delay, corrupt)");
    }
    f.shard = parse_fault_u64(token.substr(colon + 1, at - colon - 1), token);
    f.arg = parse_fault_u64(token.substr(at + 1), token);
    plan.faults.push_back(f);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const Fault& f : faults) {
    if (!out.empty()) out += ',';
    out += fault_kind_name(f.kind);
    out += ':';
    out += std::to_string(f.shard);
    out += '@';
    out += std::to_string(f.arg);
  }
  return out;
}

FaultPlan FaultPlan::for_shard(std::size_t shard) const {
  FaultPlan out;
  for (const Fault& f : faults) {
    if (f.shard == shard) out.faults.push_back(f);
  }
  return out;
}

std::size_t FaultPlan::delay_waves(std::size_t shard) const {
  std::size_t waves = 0;
  for (const Fault& f : faults) {
    if (f.kind == FaultKind::kDelay && f.shard == shard) {
      waves = std::max(waves, f.arg);
    }
  }
  return waves;
}

std::string apply_stream_faults(const FaultPlan& plan, std::size_t shard,
                                std::string text, bool* killed) {
  if (killed != nullptr) *killed = false;
  for (const Fault& f : plan.faults) {
    if (f.shard != shard) continue;
    switch (f.kind) {
      case FaultKind::kKill: {
        // Death after writing `arg` chunk records: header + arg complete
        // lines survive, the trailer never does.
        const auto starts = line_starts(text);
        const std::size_t complete_lines = starts.size() - 1;
        const std::size_t keep =
            std::min(1 + f.arg,
                     complete_lines > 0 ? complete_lines - 1 : std::size_t{0});
        text.resize(starts[keep]);
        if (killed != nullptr) *killed = true;
        break;
      }
      case FaultKind::kTruncateBytes:
        text.resize(std::min(f.arg, text.size()));
        break;
      case FaultKind::kTruncateLines: {
        const auto starts = line_starts(text);
        text.resize(starts[std::min(f.arg, starts.size() - 1)]);
        break;
      }
      case FaultKind::kCorrupt: {
        // Flip one bit in the middle of line `arg` (1-based). The line
        // usually still parses field-by-field — the per-line CRC is what
        // must catch it.
        const auto starts = line_starts(text);
        if (f.arg == 0 || f.arg > starts.size() - 1) break;
        const std::size_t begin = starts[f.arg - 1];
        const std::size_t len = starts[f.arg] - begin - 1;  // sans newline
        if (len == 0) break;
        text[begin + len / 2] ^= 0x01;
        break;
      }
      case FaultKind::kDelay:
        break;  // a delivery fault; executors consult delay_waves()
    }
  }
  return text;
}

void DelayQueue::push(TaskOutcome outcome, std::size_t waves) {
  entries_.push_back(Entry{std::move(outcome), waves});
}

std::vector<TaskOutcome> DelayQueue::advance() {
  std::vector<TaskOutcome> due;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (--it->waves_left == 0) {
      due.push_back(std::move(it->outcome));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return due;
}

std::vector<TaskOutcome> DelayQueue::drain() {
  std::vector<TaskOutcome> due;
  for (auto& e : entries_) due.push_back(std::move(e.outcome));
  entries_.clear();
  return due;
}

// ---------------------------------------------------------------------------
// ThreadExecutor

ThreadExecutor::ThreadExecutor(const Scenario& scenario,
                               const CampaignOptions& options,
                               FaultPlan faults)
    : scenario_(scenario), options_(options), faults_(std::move(faults)) {
  // Task results are consumed as serialized text; progress lines and
  // trace buffers belong to real shard processes, not dispatch tasks.
  options_.progress = false;
  options_.trace = nullptr;
}

std::vector<TaskOutcome> ThreadExecutor::run_wave(
    const std::vector<ShardTask>& tasks) {
  std::vector<TaskOutcome> outcomes(tasks.size());
  std::vector<std::thread> threads;
  threads.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    threads.emplace_back([this, &tasks, &outcomes, i] {
      const ShardTask& task = tasks[i];
      const ShardExecution exec =
          run_campaign_chunks(scenario_, options_, task.plan);
      std::string text = serialize_chunk_stream(scenario_, options_, exec);
      bool task_killed = false;
      if (task.generation == 0) {
        text = apply_stream_faults(faults_, task.slot, std::move(text),
                                   &task_killed);
      }
      TaskOutcome& o = outcomes[i];
      o.slot = task.slot;
      o.generation = task.generation;
      o.exited_ok = !task_killed;
      o.stream_text = std::move(text);
      o.source = "thread slot " + std::to_string(task.slot) + " gen " +
                 std::to_string(task.generation);
    });
  }
  for (auto& t : threads) t.join();

  // Deliver in task order (determinism is first-wins order-sensitive for
  // the counters, though never for the aggregates); delay faults divert
  // generation-0 outcomes into the queue.
  std::vector<TaskOutcome> ready;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const std::size_t waves = tasks[i].generation == 0
                                  ? faults_.delay_waves(tasks[i].slot)
                                  : 0;
    if (waves > 0) {
      delayed_.push(std::move(outcomes[i]), waves);
    } else {
      ready.push_back(std::move(outcomes[i]));
    }
  }
  return ready;
}

std::vector<TaskOutcome> ThreadExecutor::collect_delayed() {
  return delayed_.advance();
}

std::vector<TaskOutcome> ThreadExecutor::drain() { return delayed_.drain(); }

// ---------------------------------------------------------------------------
// SubprocessExecutor

namespace {

/// POSIX-shell single quoting (popen runs through /bin/sh).
std::string shell_quote(std::string_view s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

}  // namespace

SubprocessExecutor::SubprocessExecutor(std::string runner_path,
                                       std::string workdir,
                                       std::string scenario_name,
                                       CampaignOptions options,
                                       FaultPlan faults)
    : runner_path_(std::move(runner_path)),
      workdir_(std::move(workdir)),
      scenario_name_(std::move(scenario_name)),
      options_(options),
      faults_(std::move(faults)) {}

std::vector<TaskOutcome> SubprocessExecutor::run_wave(
    const std::vector<ShardTask>& tasks) {
  struct Child {
    std::FILE* pipe = nullptr;
    std::string path;
  };
  std::vector<Child> children(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const ShardTask& task = tasks[i];
    Child& child = children[i];
    child.path = workdir_ + "/shard-" + std::to_string(task.slot) + "-gen" +
                 std::to_string(task.generation) + ".jsonl";

    std::string cmd = shell_quote(runner_path_);
    cmd += " --scenario=" + shell_quote(scenario_name_);
    cmd += " --seed=" + std::to_string(options_.seed);
    if (options_.trials_per_point > 0) {
      cmd += " --trials=" + std::to_string(options_.trials_per_point);
    }
    cmd += " --threads=" + std::to_string(options_.threads);
    cmd += " --chunk=" + std::to_string(options_.chunk_size);
    if (!options_.reuse_deployments) cmd += " --no-reuse";
    if (!options_.snapshots) cmd += " --no-snapshot";
    if (!options_.snapshot_dir.empty()) {
      cmd += " --snapshot-dir=" + shell_quote(options_.snapshot_dir);
    }
    cmd += " --shards=" + std::to_string(task.plan.shard_count);
    cmd += " --shard=" + std::to_string(task.slot);
    cmd += " --emit-chunks=" + shell_quote(child.path);
    if (task.generation > 0) {
      // Repair wave: the explicit chunk set, never refaulted.
      std::string ids;
      for (const ChunkRef& ref : task.plan.chunks) {
        if (!ids.empty()) ids += ',';
        ids += std::to_string(ref.chunk_index);
      }
      cmd += " --chunks=" + shell_quote(ids);
    } else {
      const FaultPlan shard_faults = faults_.for_shard(task.slot);
      if (!shard_faults.empty()) {
        cmd += " --fault-plan=" + shell_quote(shard_faults.to_string());
      }
    }
    cmd += " >/dev/null 2>&1";
    child.pipe = ::popen(cmd.c_str(), "r");
    if (child.pipe == nullptr) {
      throw DispatchError("dispatch: popen failed for slot " +
                          std::to_string(task.slot));
    }
  }

  std::vector<TaskOutcome> ready;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const int status = ::pclose(children[i].pipe);
    TaskOutcome o;
    o.slot = tasks[i].slot;
    o.generation = tasks[i].generation;
    o.exited_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    o.source = children[i].path;
    // A dead child's stream is whatever it wrote before dying — possibly
    // nothing; an unreadable file is data loss, not an error.
    std::string text;
    if (snapshot::read_whole_file(children[i].path, text) ==
        snapshot::FileReadStatus::kOk) {
      o.stream_text = std::move(text);
    }
    const std::size_t waves = tasks[i].generation == 0
                                  ? faults_.delay_waves(tasks[i].slot)
                                  : 0;
    if (waves > 0) {
      delayed_.push(std::move(o), waves);
    } else {
      ready.push_back(std::move(o));
    }
  }
  return ready;
}

std::vector<TaskOutcome> SubprocessExecutor::collect_delayed() {
  return delayed_.advance();
}

std::vector<TaskOutcome> SubprocessExecutor::drain() {
  return delayed_.drain();
}

// ---------------------------------------------------------------------------
// dispatch_campaign

namespace {

/// Surfaces the dispatcher's accounting through the standard obs
/// counters so --metrics-json (and CI's chunks_redealt gate) see it.
void add_dispatch_counters(DispatchReport& rep) {
  auto& counters = rep.metrics.report.counters;
  counters[static_cast<std::size_t>(obs::Counter::kChunksRedealt)] +=
      rep.chunks_redealt;
  counters[static_cast<std::size_t>(obs::Counter::kChunksDuplicate)] +=
      rep.chunks_duplicate;
  counters[static_cast<std::size_t>(obs::Counter::kShardsDead)] +=
      rep.shards_dead;
  counters[static_cast<std::size_t>(obs::Counter::kShardsStraggler)] +=
      rep.shards_straggler;
  counters[static_cast<std::size_t>(obs::Counter::kTasksRetried)] +=
      rep.tasks_retried;
}

/// Canonical fold, exactly as merge_chunk_streams: ascending global
/// chunk id, runtime fields zeroed. Requires every id accepted.
CampaignResult fold_canonical(
    const Scenario& scenario, std::uint64_t seed, const ShardPlan& global,
    const std::vector<std::optional<ChunkRecord>>& accepted) {
  CampaignResult result;
  result.scenario = scenario;
  CampaignOptions canonical;
  canonical.seed = seed;
  canonical.trials_per_point = global.trials_per_point;
  canonical.chunk_size = global.chunk_size;
  canonical.threads = 0;
  result.options = canonical;
  result.points.resize(global.point_count);
  for (std::size_t p = 0; p < global.point_count; ++p) {
    result.points[p].point_index = p;
    result.points[p].axis_value = scenario.axis_value_at(p);
  }
  for (const auto& rec : accepted) {
    auto& point = result.points[rec->ref.point_index];
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      point.metrics[m].merge(rec->metrics[m]);
    }
  }
  result.total_trials = global.point_count * global.trials_per_point;
  return result;
}

}  // namespace

CampaignResult dispatch_campaign(const Scenario& scenario,
                                 const CampaignOptions& options,
                                 const DispatchOptions& dispatch,
                                 Executor& executor,
                                 DispatchReport* report) {
  if (dispatch.shard_count == 0) {
    throw DispatchError("dispatch: shard_count must be >= 1");
  }
  const std::size_t K = dispatch.shard_count;
  // The global chunk enumeration is the single source of truth: every
  // accepted record must match it exactly, every id must end up covered.
  const ShardPlan global = plan_shard(scenario, options, 1, 0);

  DispatchReport rep;
  std::vector<std::optional<ChunkRecord>> accepted(global.total_chunks);
  std::size_t covered = 0;
  std::vector<bool> slot_complete(K, false);

  const auto process_outcome = [&](TaskOutcome& o, bool from_delay) {
    const SalvagedStream s = salvage_chunk_stream(o.stream_text, o.source);
    const bool geometry_ok =
        s.header_valid && s.header.scenario == scenario.name &&
        s.header.seed == options.seed &&
        s.header.trials_per_point == global.trials_per_point &&
        s.header.chunk_size == global.chunk_size &&
        s.header.shard_count == K &&
        s.header.point_count == global.point_count &&
        s.header.total_chunks == global.total_chunks;
    std::size_t duplicates = 0;
    if (geometry_ok) {
      for (const ChunkRecord& rec : s.chunks) {
        // Salvage already enforced the strict per-record rules; this
        // pins the record to the recomputed enumeration (a stream from a
        // different build or a hand-edited geometry cannot smuggle a
        // mislabeled chunk in).
        if (!(rec.ref == global.chunks[rec.ref.chunk_index])) break;
        if (accepted[rec.ref.chunk_index].has_value()) {
          // First-wins suppression. Duplicated chunks are bit-identical
          // by determinism, so which copy merges never matters.
          ++duplicates;
          continue;
        }
        accepted[rec.ref.chunk_index] = rec;
        ++covered;
      }
      if (s.complete) {
        // Only a complete stream's trailer is trustworthy accounting;
        // a salvaged prefix merges its records but forfeits its
        // counters. Stragglers and their repair tasks BOTH count, so
        // executed trials exceed merged trials exactly when work was
        // duplicated.
        ++rep.streams_complete;
        ++rep.metrics.shards;
        rep.metrics.threads += s.trailer.threads;
        rep.metrics.wall_ns += s.trailer.wall_ns;
        rep.metrics.report.merge(s.trailer.report);
        if (o.generation == 0 && o.slot < K) slot_complete[o.slot] = true;
      }
    }
    rep.chunks_duplicate += duplicates;
    if (from_delay && duplicates > 0) ++rep.shards_straggler;
  };

  // Initial deal: the same round-robin plans a faultless sharded run
  // uses, one task per slot.
  std::vector<ShardTask> tasks;
  tasks.reserve(K);
  for (std::size_t i = 0; i < K; ++i) {
    ShardTask task;
    task.slot = i;
    task.generation = 0;
    task.plan = plan_shard(scenario, options, K, i);
    tasks.push_back(std::move(task));
  }
  std::vector<TaskOutcome> outcomes = executor.run_wave(tasks);

  for (std::size_t round = 0;; ++round) {
    for (TaskOutcome& o : outcomes) process_outcome(o, false);
    for (TaskOutcome& o : executor.collect_delayed()) {
      process_outcome(o, true);
    }

    std::vector<std::size_t> missing;
    for (std::size_t id = 0; id < accepted.size(); ++id) {
      if (!accepted[id].has_value()) missing.push_back(id);
    }
    if (missing.empty()) break;
    if (round >= dispatch.max_rounds) {
      throw DispatchError(
          "dispatch: " + std::to_string(missing.size()) +
          " chunk(s) still missing after " + std::to_string(round) +
          " recovery round(s) (first missing id " +
          std::to_string(missing.front()) + ")");
    }

    // Re-deal ONLY the missing ids, round-robin over the worker slots.
    rep.rounds = round + 1;
    rep.chunks_redealt += missing.size();
    const std::size_t repair_slots = std::min(K, missing.size());
    std::vector<ShardTask> repairs;
    for (std::size_t j = 0; j < repair_slots; ++j) {
      std::vector<std::size_t> ids;
      for (std::size_t m = j; m < missing.size(); m += repair_slots) {
        ids.push_back(missing[m]);
      }
      ShardTask task;
      task.slot = j;
      task.generation = round + 1;
      task.plan = make_repair_plan(scenario, options, K, j, ids);
      repairs.push_back(std::move(task));
    }
    rep.tasks_retried += repairs.size();
    outcomes = executor.run_wave(repairs);
  }

  // Account stragglers that were still in flight when recovery finished.
  for (TaskOutcome& o : executor.drain()) process_outcome(o, true);
  for (std::size_t i = 0; i < K; ++i) {
    if (!slot_complete[i]) ++rep.shards_dead;
  }

  add_dispatch_counters(rep);
  CampaignResult result =
      fold_canonical(scenario, options.seed, global, accepted);
  if (report != nullptr) *report = std::move(rep);
  return result;
}

CampaignResult recover_campaign(const Scenario& scenario,
                                const CampaignOptions& options,
                                const std::vector<SalvagedStream>& streams,
                                DispatchReport* report) {
  const SalvagedStream* first = nullptr;
  for (const SalvagedStream& s : streams) {
    if (s.header_valid) {
      first = &s;
      break;
    }
  }
  if (first == nullptr) {
    throw DispatchError(
        "recover: no stream has a salvageable header — the campaign "
        "identity (scenario/seed/trials/chunk size) is unrecoverable");
  }
  const ChunkStreamHeader& h = first->header;
  if (h.scenario != scenario.name) {
    throw DispatchError("recover: streams are for scenario '" + h.scenario +
                        "', not '" + scenario.name + "'");
  }
  // Campaign identity from the salvaged header; execution knobs (worker
  // threads, reuse, snapshots) from the caller.
  CampaignOptions ropt = options;
  ropt.seed = h.seed;
  ropt.trials_per_point = h.trials_per_point;
  ropt.chunk_size = h.chunk_size;
  const std::size_t K = h.shard_count;
  const ShardPlan global = plan_shard(scenario, ropt, 1, 0);
  if (global.trials_per_point != h.trials_per_point ||
      global.point_count != h.point_count ||
      global.total_chunks != h.total_chunks) {
    throw DispatchError("recover: " + first->source +
                        " geometry disagrees with scenario '" +
                        scenario.name + "'");
  }

  DispatchReport rep;
  std::vector<std::optional<ChunkRecord>> accepted(global.total_chunks);
  for (const SalvagedStream& s : streams) {
    const bool geometry_ok =
        s.header_valid && s.header.scenario == h.scenario &&
        s.header.seed == h.seed &&
        s.header.trials_per_point == h.trials_per_point &&
        s.header.chunk_size == h.chunk_size && s.header.shard_count == K &&
        s.header.point_count == h.point_count &&
        s.header.total_chunks == h.total_chunks;
    if (geometry_ok) {
      for (const ChunkRecord& rec : s.chunks) {
        if (!(rec.ref == global.chunks[rec.ref.chunk_index])) break;
        if (accepted[rec.ref.chunk_index].has_value()) {
          ++rep.chunks_duplicate;
          continue;
        }
        accepted[rec.ref.chunk_index] = rec;
      }
    }
    if (geometry_ok && s.complete) {
      ++rep.streams_complete;
      ++rep.metrics.shards;
      rep.metrics.threads += s.trailer.threads;
      rep.metrics.wall_ns += s.trailer.wall_ns;
      rep.metrics.report.merge(s.trailer.report);
    } else {
      ++rep.shards_dead;
    }
  }

  std::vector<std::size_t> missing;
  for (std::size_t id = 0; id < accepted.size(); ++id) {
    if (!accepted[id].has_value()) missing.push_back(id);
  }
  if (!missing.empty()) {
    // One in-process repair execution covers every missing chunk —
    // chunk identity, not worker identity, keys the trial seeds, so
    // this is bit-identical to what the dead shards would have run.
    rep.rounds = 1;
    rep.chunks_redealt = missing.size();
    rep.tasks_retried = 1;
    const ShardExecution exec = run_campaign_chunks(
        scenario, ropt, make_repair_plan(scenario, ropt, K, 0, missing));
    for (std::size_t c = 0; c < exec.plan.chunks.size(); ++c) {
      ChunkRecord rec;
      rec.ref = exec.plan.chunks[c];
      rec.metrics = exec.chunk_metrics[c];
      accepted[rec.ref.chunk_index] = std::move(rec);
    }
    ++rep.streams_complete;
    ++rep.metrics.shards;
    rep.metrics.threads += exec.threads;
    rep.metrics.wall_ns +=
        static_cast<std::uint64_t>(exec.wall_seconds * 1e9);
    rep.metrics.report.merge(exec.metrics);
  }

  add_dispatch_counters(rep);
  CampaignResult result = fold_canonical(scenario, h.seed, global, accepted);
  if (report != nullptr) *report = std::move(rep);
  return result;
}

}  // namespace hs::campaign
