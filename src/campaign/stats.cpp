#include "campaign/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hs::campaign {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return std::max(m2_ / static_cast<double>(count_ - 1), 0.0);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

WilsonInterval wilson_interval(std::size_t successes, std::size_t total,
                               double z) {
  WilsonInterval w;
  if (total == 0) return w;
  const double n = static_cast<double>(total);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  w.lo = std::clamp((center - margin) / denom, 0.0, 1.0);
  w.hi = std::clamp((center + margin) / denom, 0.0, 1.0);
  return w;
}

WilsonInterval wilson_interval(const StreamingStats& stats, double z) {
  const double clamped =
      std::clamp(stats.sum(), 0.0, static_cast<double>(stats.count()));
  return wilson_interval(
      static_cast<std::size_t>(std::llround(clamped)), stats.count(), z);
}

}  // namespace hs::campaign
