#include "campaign/report.hpp"

#include <cinttypes>
#include <cstdio>
#include <string_view>

#include "dsp/kernels.hpp"

namespace hs::campaign {

namespace {

/// RFC 4180 field quoting: fields containing a comma, double quote, CR or
/// LF are wrapped in double quotes with embedded quotes doubled. Preset
/// descriptions routinely contain commas; without this they shear the
/// column layout.
std::string csv_field(std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

// Decimal %.9g formatting is allowlisted in LINT.toml (float-format):
// these reports are terminal — byte-compared by the determinism checks
// but never re-parsed into moments. Values that must round-trip exactly
// travel as %a hex-floats in chunk_stream.cpp instead.
void append_row_metrics(std::string& out, const PointResult& point,
                        Metric metric, const std::string& prefix,
                        const std::string& suffix) {
  const auto& st = point.stats(metric);
  char buf[512];
  if (metric_is_indicator(metric)) {
    const auto w = wilson_interval(st);
    std::snprintf(buf, sizeof buf, "%zu,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g",
                  st.count(), st.mean(), st.stddev(), st.min(), st.max(),
                  w.lo, w.hi);
  } else {
    std::snprintf(buf, sizeof buf, "%zu,%.9g,%.9g,%.9g,%.9g,,",
                  st.count(), st.mean(), st.stddev(), st.min(), st.max());
  }
  out += prefix;
  out += buf;
  out += suffix;
  out += '\n';
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_csv(const CampaignResult& result) {
  std::string out =
      "scenario,axis,axis_value,metric,count,mean,stddev,min,max,"
      "wilson_lo,wilson_hi,description\n";
  const auto& metrics = metrics_for(result.scenario.kind);
  std::string suffix = ",";
  suffix += csv_field(result.scenario.description);
  for (const auto& point : result.points) {
    for (Metric metric : metrics) {
      char axis_value[64];
      std::snprintf(axis_value, sizeof axis_value, "%.9g", point.axis_value);
      std::string prefix = csv_field(result.scenario.name);
      prefix += ',';
      prefix += csv_field(axis_name(result.scenario.axis));
      prefix += ',';
      prefix += axis_value;
      prefix += ',';
      prefix += csv_field(metric_name(metric));
      prefix += ',';
      append_row_metrics(out, point, metric, prefix, suffix);
    }
  }
  return out;
}

std::string to_json(const CampaignResult& result) {
  std::string out;
  char buf[512];
  // The string fields (description in particular) have no length bound,
  // so they are appended as std::strings rather than routed through the
  // fixed snprintf buffer, which would silently truncate to broken JSON.
  out += "{\n  \"scenario\": \"";
  out += json_escape(result.scenario.name);
  out += "\",\n  \"paper_ref\": \"";
  out += json_escape(result.scenario.paper_ref);
  out += "\",\n  \"description\": \"";
  out += json_escape(result.scenario.description);
  out += "\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"seed\": %" PRIu64 ",\n"
                "  \"threads\": %u,\n"
                "  \"trials_per_point\": %zu,\n"
                "  \"total_trials\": %zu,\n"
                "  \"wall_seconds\": %.6f,\n"
                "  \"trials_per_second\": %.3f,\n"
                "  \"axis\": \"%s\",\n"
                "  \"points\": [\n",
                result.options.seed,
                result.options.threads,
                result.options.trials_per_point > 0
                    ? result.options.trials_per_point
                    : result.scenario.default_trials,
                result.total_trials, result.wall_seconds,
                result.trials_per_second(),
                std::string(axis_name(result.scenario.axis)).c_str());
  out += buf;

  const auto& metrics = metrics_for(result.scenario.kind);
  for (std::size_t p = 0; p < result.points.size(); ++p) {
    const auto& point = result.points[p];
    std::snprintf(buf, sizeof buf,
                  "    {\"axis_value\": %.9g, \"metrics\": {",
                  point.axis_value);
    out += buf;
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      const auto& st = point.stats(metrics[m]);
      std::snprintf(buf, sizeof buf,
                    "%s\"%s\": {\"count\": %zu, \"mean\": %.9g, "
                    "\"stddev\": %.9g, \"min\": %.9g, \"max\": %.9g",
                    m == 0 ? "" : ", ",
                    std::string(metric_name(metrics[m])).c_str(), st.count(),
                    st.mean(), st.stddev(), st.min(), st.max());
      out += buf;
      if (metric_is_indicator(metrics[m])) {
        const auto w = wilson_interval(st);
        std::snprintf(buf, sizeof buf,
                      ", \"wilson_lo\": %.9g, \"wilson_hi\": %.9g", w.lo,
                      w.hi);
        out += buf;
      }
      out += "}";
    }
    out += p + 1 < result.points.size() ? "}},\n" : "}}\n";
  }
  out += "  ]\n}\n";
  return out;
}

void print_summary(std::FILE* out, const CampaignResult& result) {
  std::fprintf(out, "== campaign: %s ==\n", result.scenario.name.c_str());
  std::fprintf(out, "   reproduces: %s\n",
               result.scenario.paper_ref.c_str());
  std::fprintf(out, "   %zu points x %zu trials, %u thread(s), %.2fs "
                    "(%.1f trials/s)\n\n",
               result.points.size(),
               result.points.empty()
                   ? std::size_t{0}
                   : result.total_trials / result.points.size(),
               result.options.threads, result.wall_seconds,
               result.trials_per_second());
  const auto& metrics = metrics_for(result.scenario.kind);
  std::fprintf(out, "  %-20s", std::string(axis_name(result.scenario.axis))
                                   .c_str());
  for (Metric metric : metrics) {
    std::fprintf(out, "  %-22s", std::string(metric_name(metric)).c_str());
  }
  std::fprintf(out, "\n");
  for (const auto& point : result.points) {
    std::fprintf(out, "  %-20.6g", point.axis_value);
    for (Metric metric : metrics) {
      const auto& st = point.stats(metric);
      char cell[64];
      std::snprintf(cell, sizeof cell, "%.4f +- %.4f", st.mean(),
                    st.stddev());
      std::fprintf(out, "  %-22s", cell);
    }
    std::fprintf(out, "\n");
  }
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "campaign: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    std::fprintf(stderr, "campaign: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

void canonicalize(CampaignResult& result) {
  result.wall_seconds = 0.0;
  result.options.threads = 0;
  result.deployments_built = 0;
  result.deployments_reused = 0;
  result.chunks_stolen = 0;
  result.snapshots_restored = 0;
  result.snapshots_saved = 0;
}

std::string metrics_report_json(const std::string& scenario_name,
                                std::uint64_t seed, std::size_t shards,
                                unsigned threads, double wall_seconds,
                                const obs::Report& report) {
  std::string out;
  out.reserve(2048);
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"format\": \"hs-metrics\",\n"
                "  \"version\": %d,\n",
                obs::kMetricsVersion);
  out += buf;
  out += "  \"scenario\": \"" + json_escape(scenario_name) + "\",\n";
  std::snprintf(buf, sizeof buf,
                "  \"seed\": %" PRIu64 ",\n"
                "  \"shards\": %zu,\n"
                "  \"threads\": %u,\n"
                "  \"wall_seconds\": %.6f,\n"
                "  \"counters\": {\n",
                seed, shards, threads, wall_seconds);
  out += buf;
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    std::snprintf(buf, sizeof buf, "    \"%.*s\": %" PRIu64 "%s\n",
                  static_cast<int>(
                      obs::counter_name(static_cast<obs::Counter>(i)).size()),
                  obs::counter_name(static_cast<obs::Counter>(i)).data(),
                  report.counters[i],
                  i + 1 < obs::kCounterCount ? "," : "");
    out += buf;
  }
  out += "  },\n  \"phases\": {\n";
  const double wall_ns = wall_seconds > 0.0 ? wall_seconds * 1e9 : 0.0;
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const obs::PhaseTotals& t = report.phases[i];
    const double share =
        wall_ns > 0.0 ? static_cast<double>(t.ns) / wall_ns : 0.0;
    std::snprintf(buf, sizeof buf,
                  "    \"%.*s\": {\"calls\": %" PRIu64 ", \"ns\": %" PRIu64
                  ", \"share\": %.6f}%s\n",
                  static_cast<int>(
                      obs::phase_name(static_cast<obs::Phase>(i)).size()),
                  obs::phase_name(static_cast<obs::Phase>(i)).data(),
                  t.calls, t.ns, share,
                  i + 1 < obs::kPhaseCount ? "," : "");
    out += buf;
  }
  out += "  }\n}\n";
  return out;
}

std::string perf_snapshot_json(const CampaignResult& serial_no_reuse,
                               const CampaignResult& serial_reuse,
                               const CampaignResult& warm,
                               const CampaignResult& parallel_warm,
                               unsigned hardware_threads,
                               const CampaignResult* obs_run) {
  const auto ratio = [](const CampaignResult& a, const CampaignResult& b) {
    return a.wall_seconds > 0.0 && b.wall_seconds > 0.0
               ? a.wall_seconds / b.wall_seconds
               : 0.0;
  };
  char buf[1792];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"bench\": \"campaign_runner\",\n"
      "  \"scenario\": \"%s\",\n"
      "  \"seed\": %" PRIu64 ",\n"
      "  \"total_trials\": %zu,\n"
      "  \"hardware_threads\": %u,\n"
      "  \"simd_backend\": \"%s\",\n"
      "  \"serial_no_reuse\": {\"threads\": 1, \"wall_seconds\": %.6f, "
      "\"trials_per_second\": %.3f},\n"
      "  \"serial\": {\"threads\": 1, \"wall_seconds\": %.6f, "
      "\"trials_per_second\": %.3f, \"deployments_built\": %zu, "
      "\"deployments_reused\": %zu},\n"
      "  \"warm\": {\"threads\": 1, \"wall_seconds\": %.6f, "
      "\"trials_per_second\": %.3f, \"snapshots_restored\": %zu, "
      "\"snapshots_saved\": %zu},\n"
      "  \"parallel\": {\"threads\": %u, \"wall_seconds\": %.6f, "
      "\"trials_per_second\": %.3f, \"chunks_stolen\": %zu, "
      "\"snapshots_restored\": %zu},\n"
      "  \"reuse_speedup\": %.3f,\n"
      "  \"warm_speedup\": %.3f,\n"
      "  \"thread_speedup\": %.3f,\n"
      "  \"speedup\": %.3f",
      serial_no_reuse.scenario.name.c_str(), serial_no_reuse.options.seed,
      serial_no_reuse.total_trials, hardware_threads,
      dsp::kernels::backend_name(dsp::kernels::active_backend()),
      serial_no_reuse.wall_seconds,
      serial_no_reuse.trials_per_second(), serial_reuse.wall_seconds,
      serial_reuse.trials_per_second(), serial_reuse.deployments_built,
      serial_reuse.deployments_reused, warm.wall_seconds,
      warm.trials_per_second(), warm.snapshots_restored,
      warm.snapshots_saved, parallel_warm.options.threads,
      parallel_warm.wall_seconds, parallel_warm.trials_per_second(),
      parallel_warm.chunks_stolen, parallel_warm.snapshots_restored,
      ratio(serial_no_reuse, serial_reuse),
      ratio(serial_reuse, warm),
      ratio(warm, parallel_warm),
      ratio(serial_no_reuse, parallel_warm));
  std::string out(buf);

  if (obs_run != nullptr) {
    // The instrumented leg: same campaign as `warm` but with phase
    // timers on. obs_overhead is the acceptance metric (<= 1.02);
    // phase_breakdown surfaces where the wall time went.
    std::snprintf(buf, sizeof buf,
                  ",\n"
                  "  \"obs\": {\"threads\": 1, \"wall_seconds\": %.6f, "
                  "\"trials_per_second\": %.3f},\n"
                  "  \"obs_overhead\": %.3f,\n"
                  "  \"phase_breakdown\": {",
                  obs_run->wall_seconds, obs_run->trials_per_second(),
                  ratio(*obs_run, warm));
    out += buf;
    const double wall_ns =
        obs_run->wall_seconds > 0.0 ? obs_run->wall_seconds * 1e9 : 0.0;
    for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
      const obs::PhaseTotals& t = obs_run->metrics.phases[i];
      const double share =
          wall_ns > 0.0 ? static_cast<double>(t.ns) / wall_ns : 0.0;
      std::snprintf(
          buf, sizeof buf, "%s\"%.*s\": %.4f", i > 0 ? ", " : "",
          static_cast<int>(
              obs::phase_name(static_cast<obs::Phase>(i)).size()),
          obs::phase_name(static_cast<obs::Phase>(i)).data(), share);
      out += buf;
    }
    out += "}";
  }
  out += "\n}\n";
  return out;
}

}  // namespace hs::campaign
