/// @file
/// Streaming statistics for Monte Carlo campaigns.
///
/// Workers accumulate samples into chunk-local StreamingStats and the
/// runner merges the chunks in a fixed order, so the final aggregates are
/// bit-identical no matter how many threads executed the trials.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hs::campaign {

/// Welford/Chan streaming accumulator: mean, variance, min and max of a
/// sample stream, mergeable across accumulators without storing samples.
/// Merging A.merge(B) is equivalent to feeding B's samples after A's; as
/// long as the merge order is deterministic, results are bit-reproducible.
class StreamingStats {
 public:
  /// The raw accumulator state, exposed so the sharded-campaign chunk
  /// streams can serialize accumulators exactly (hex-float round trip)
  /// and rebuild them bit-identical in the merge process.
  struct Moments {
    std::size_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  void add(double x);

  /// Folds `other` into this accumulator (Chan et al.'s parallel update).
  void merge(const StreamingStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance/stddev (Bessel's correction, divides by
  /// n-1) — the estimator the campaign confidence reporting consumes.
  /// Returns 0 for fewer than two samples. merge() stays exact: it
  /// combines raw second moments (m2), so merged and sequential
  /// accumulation agree bit-for-bit regardless of the divisor applied
  /// here at read time.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  Moments moments() const {
    return Moments{count_, mean_, m2_, min_, max_};
  }
  static StreamingStats from_moments(const Moments& m) {
    StreamingStats st;
    if (m.count == 0) return st;
    st.count_ = m.count;
    st.mean_ = m.mean;
    st.m2_ = m.m2;
    st.min_ = m.min;
    st.max_ = m.max;
    return st;
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Wilson score interval for a Bernoulli proportion.
struct WilsonInterval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Wilson interval from `successes` out of `total` at confidence z
/// (z = 1.96 for 95%). Returns [0, 1] bounds; empty totals give [0, 0].
WilsonInterval wilson_interval(std::size_t successes, std::size_t total,
                               double z = 1.96);

/// Wilson interval for a stats stream whose samples are 0/1 indicators
/// (attack success, packet jammed, ...). `stats.sum()` is the success
/// count; non-indicator streams get a clamped but meaningless interval.
WilsonInterval wilson_interval(const StreamingStats& stats, double z = 1.96);

}  // namespace hs::campaign
