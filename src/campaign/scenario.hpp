/// @file
/// Declarative Monte Carlo scenarios for the paper's evaluation grid.
///
/// A Scenario names one experiment family (passive eavesdropping, active
/// command injection, coexistence, calibration, timing, cancellation,
/// spectral profiling, or one of the extension studies), its geometry and
/// ablation toggles, and an optional sweep axis. The campaign runner
/// expands the sweep into points, fans repeated trials over a worker
/// pool, and aggregates per-point statistics. Every bench_fig*/
/// bench_table*/bench_ablate*/bench_ext* workload drives a named preset
/// from here, plus multi-adversary and multi-IMD variants the paper's
/// testbed could not set up. docs/REPRODUCING.md maps presets back to
/// paper figures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "imd/profiles.hpp"
#include "shield/experiments.hpp"

namespace hs::campaign {

/// Which experiment family a trial executes.
enum class ExperimentKind {
  kEavesdrop,         ///< passive adversary BER / shield PER (Figs. 8-10)
  kActiveAttack,      ///< unauthorized command injection (Figs. 11-13)
  kCoexistence,       ///< cross-traffic + turn-around (Table 2)
  kPthresh,           ///< alarm-threshold calibration (Table 1)
  kImdTiming,         ///< IMD reply-delay / no-carrier-sense (Fig. 3)
  kCancellation,      ///< antidote cancellation CDF (Fig. 7, ablations)
  kSpectrum,          ///< FSK / jamming power profile (Figs. 4-5)
  kMultipathAntidote, ///< scalar vs FIR antidote under multipath (sec. 5 fn 2)
  kWideband,          ///< 3 MHz whole-band monitor vs hopping (sec. 7(c))
};

/// The parameter a scenario sweeps; each value becomes one campaign point.
enum class SweepAxis {
  kNone,               ///< single point
  kLocation,           ///< testbed location index (1-based)
  kJamMarginDb,        ///< jamming power relative to received IMD power
  kExtraPowerDb,       ///< adversary power above the FCC limit
  kHardwareErrorSigma, ///< antidote analog accuracy
  kAdversaryPowerDbm,  ///< raw adversary TX power (P_thresh sweep)
  kMultipathTapDb,     ///< 2nd H_jam->rec tap strength rel. to the 1st
  kMicsChannel,        ///< MICS channel index the adversary hops to
};

/// Everything a campaign trial needs, as data. Axis values override the
/// corresponding scalar field at each sweep point.
struct Scenario {
  std::string name;
  std::string paper_ref;
  /// One-line summary for `campaign_runner --list` and the reproduction
  /// manual (docs/REPRODUCING.md).
  std::string description;
  ExperimentKind kind = ExperimentKind::kEavesdrop;

  // -- geometry / devices ---------------------------------------------------
  /// Adversary (or eavesdropper) testbed locations. More than one entry
  /// means simultaneous adversaries: the eavesdrop metric becomes the
  /// per-packet BEST adversary (min BER), the conservative privacy bound.
  std::vector<int> adversary_locations{1};
  /// IMDs protected by the shield. More than one entry means the attack
  /// succeeds if ANY device accepts the command (multi-IMD patient).
  std::vector<imd::ImdProfile> imd_profiles{imd::virtuoso_profile()};
  bool shield_present = true;

  // -- passive-adversary / jamming toggles ----------------------------------
  shield::JamProfile jam_profile = shield::JamProfile::kShaped;
  bool bandpass_attack = false;        ///< shaping ablation decoder
  bool use_margin_override = false;
  double jam_margin_db = 20.0;
  double hardware_error_sigma = 0.0;   ///< <= 0 keeps the shield default

  // -- active-adversary toggles ---------------------------------------------
  shield::AttackKind attack_kind = shield::AttackKind::kTriggerTransmission;
  double extra_power_db = 0.0;

  // -- calibration / spectrum toggles ---------------------------------------
  double adversary_power_dbm = 0.0;    ///< P_thresh point power
  bool spectrum_of_jammer = false;     ///< Fig. 5 (true) vs Fig. 4 (false)

  // -- workload shape --------------------------------------------------------
  /// Packets decoded (eavesdrop) or rounds played (coexistence/P_thresh)
  /// inside one trial. Active-attack trials are always one attempt.
  std::size_t units_per_trial = 1;
  /// Trials per sweep point when the caller does not override.
  std::size_t default_trials = 40;

  // -- sweep -----------------------------------------------------------------
  SweepAxis axis = SweepAxis::kNone;
  std::vector<double> axis_values;     ///< ignored when axis == kNone

  /// Number of sweep points (>= 1).
  std::size_t point_count() const {
    return axis == SweepAxis::kNone ? 1 : axis_values.size();
  }

  /// The axis value at a sweep point (0 for single-point scenarios) —
  /// the one definition both the runner and the chunk-stream merge use.
  double axis_value_at(std::size_t point_index) const {
    return axis == SweepAxis::kNone ? 0.0 : axis_values[point_index];
  }
};

/// The metrics a trial can emit. Indicator metrics (0/1 samples) support
/// Wilson intervals; continuous metrics report mean/stddev/min/max.
enum class Metric {
  kAdversaryBer,
  kShieldPacketLoss,
  kAttackSuccess,
  kAlarm,
  kBatteryMj,
  kCrossTrafficJammed,
  kImdCommandJammed,
  kTurnaroundUs,
  kPthreshSuccess,
  kPthreshRssiDbm,
  kReplyDelayIdleMs,
  kReplyDelayBusyMs,
  kCancellationDb,
  kToneBandFraction,
  kScalarCancellationDb,    ///< flat antidote under multipath
  kMultitapCancellationDb,  ///< FIR-equalizer antidote under multipath
  kWidebandDetect,          ///< hopping command flagged by the monitor
  kWidebandReactionMs,      ///< S_id decision latency into the packet
};

inline constexpr std::size_t kMetricCount = 18;

/// Stable short name used in CSV/JSON reports.
std::string_view metric_name(Metric metric);

/// Inverse of metric_name (the chunk-stream parser's lookup); returns
/// false when the name matches no metric.
bool metric_from_name(std::string_view name, Metric* out);

/// True for 0/1 indicator metrics (Wilson intervals are meaningful).
bool metric_is_indicator(Metric metric);

/// Metrics the given experiment family emits, in report order.
const std::vector<Metric>& metrics_for(ExperimentKind kind);

/// Stable short name of the experiment family ("eavesdrop",
/// "active_attack", ...) — used by `campaign_runner --list --json` so
/// tools consume the preset list without scraping the human listing.
std::string_view experiment_kind_name(ExperimentKind kind);

/// True when trials of this kind stand up shield::Deployments (and can
/// therefore benefit from — and be checked against — warm-state
/// snapshots). Spectrum/wideband/multipath trials run pure DSP instead.
bool experiment_uses_deployments(ExperimentKind kind);

/// Human-readable axis label for reports ("location", "jam margin (dB)"...).
std::string_view axis_name(SweepAxis axis);

/// All named scenario presets (one per bench_fig*/bench_table* workload,
/// the section-6 ablations, and the new multi-adversary / multi-IMD
/// variants).
const std::vector<Scenario>& scenario_presets();

/// Looks up a preset by name; nullptr when unknown.
const Scenario* find_scenario(std::string_view name);

}  // namespace hs::campaign
