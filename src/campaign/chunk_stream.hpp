/// @file
/// Versioned, self-describing chunk-stream serialization (JSONL) for
/// sharded multi-process campaigns, and the merge that folds shard
/// streams back into aggregates bit-identical to a serial run.
///
/// Wire format — one JSON object per line, each line ending in a
/// CRC-16/CCITT checksum field (v3) so any single-byte corruption of a
/// line is detected rather than merged:
///
///   line 1    header: {"format":"hs-chunk-stream","version":3,
///             "scenario":...,"seed":...,"trials_per_point":...,
///             "chunk_size":...,"shard_count":K,"shard_index":i,
///             "point_count":...,"total_chunks":...,"chunk_count":N,
///             "mode":"deal"|"repair","crc":"xxxx"}
///   lines 2+  exactly N chunk records in ascending global chunk id:
///             {"chunk":id,"point":p,"trial_begin":a,"trial_end":b,
///              "metrics":{"<metric_name>":{"count":n,"mean":"0x...",
///              "m2":"0x...","min":"0x...","max":"0x..."}},"crc":"xxxx"}
///   last line metrics trailer (v2+, mandatory): the shard's merged
///             observability report, so `--merge` can aggregate all K
///             shards' counters and phase timers:
///             {"trailer":"hs-metrics","version":2,"threads":T,
///              "wall_ns":W,"counters":{"<counter>":n,... every
///              obs::Counter in enum order},"phases":{"<phase>":
///              {"calls":c,"ns":t},... every obs::Phase in enum order},
///              "crc":"xxxx"}
///
/// The "crc" value is the CRC-16/CCITT-FALSE of the line as it would
/// read WITHOUT the crc field (payload bytes up to the ',"crc"' suffix
/// plus the closing '}'), as four lowercase hex digits. A CRC-16 detects
/// every burst error up to 16 bits, so any single-byte mutation of a
/// line fails the check even when the mutated line would still parse.
///
/// "mode" is "deal" for a stream produced by the round-robin shard plan
/// (every chunk id satisfies id % K == i) and "repair" for a re-deal
/// stream produced by the fault-tolerant dispatcher (explicit chunk ids;
/// see dispatch.hpp). The strict merge accepts only "deal" streams;
/// repair streams are folded by the dispatcher's recovery merge.
///
/// Doubles travel as C99 hex-float strings ("0x1.5bf0a8b145769p+1"):
/// exact binary round trip, no decimal rounding, locale-proof. Only
/// metrics with samples are written; trailer counters/phases are always
/// written (integers, zero included) so the trailer layout is fixed.
///
/// The parser and merge are strict by design: truncated lines, CRC
/// mismatches, missing or duplicate chunk ids, chunk metadata that
/// disagrees with the shard plan, a missing or malformed trailer, and
/// header mismatches across streams (different scenario, seed, trial
/// count, chunk size, shard count or version) are hard errors — never a
/// silent partial merge. salvage_chunk_stream() is the one sanctioned
/// relaxation: it returns the longest valid prefix of records from a
/// truncated or corrupted stream (each record re-validated by exactly
/// the strict rules) so the dispatcher can re-deal only what was lost.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/runner.hpp"

namespace hs::campaign {

/// Parse/validation failure in a chunk stream; the message names the
/// offending source and line.
class ChunkStreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// v2 appended the mandatory metrics trailer line; v3 added the per-line
/// CRC and the header "mode" field (deal vs repair). Older streams are
/// rejected — regenerate with --emit-chunks.
inline constexpr int kChunkStreamVersion = 3;

struct ChunkStreamHeader {
  int version = kChunkStreamVersion;
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t trials_per_point = 0;
  std::size_t chunk_size = 1;
  std::size_t shard_count = 1;
  std::size_t shard_index = 0;
  std::size_t point_count = 0;
  std::size_t total_chunks = 0;  ///< across ALL shards
  std::size_t chunk_count = 0;   ///< records in THIS stream
  /// Repair streams carry an explicit chunk set (re-dealt by the
  /// dispatcher) instead of the round-robin deal, so the per-record
  /// `id % shard_count == shard_index` membership rule does not apply.
  bool repair = false;
};

struct ChunkRecord {
  ChunkRef ref;
  std::array<StreamingStats, kMetricCount> metrics;
  /// 1-based line in the source stream — the locator merge/salvage
  /// diagnostics report.
  std::size_t lineno = 0;
};

/// The shard's observability report as carried by the v2+ trailer line.
struct ShardMetricsTrailer {
  int version = obs::kMetricsVersion;
  unsigned threads = 1;
  std::uint64_t wall_ns = 0;
  obs::Report report;
};

struct ChunkStream {
  ChunkStreamHeader header;
  std::vector<ChunkRecord> chunks;
  ShardMetricsTrailer trailer;
  /// The stream's name (file path) as given to the parser; merge
  /// diagnostics quote it alongside the shard index.
  std::string source;
};

/// Aggregated observability across the K merged shard streams: thread
/// counts and wall time are summed (total CPU budget, not elapsed time),
/// the reports merged counter-by-counter. Kept separate from the
/// canonical CampaignResult, whose runtime fields stay zeroed.
struct MergedMetrics {
  std::size_t shards = 0;
  unsigned threads = 0;
  std::uint64_t wall_ns = 0;
  obs::Report report;
};

/// Best-effort parse of a possibly truncated or corrupted stream: the
/// longest prefix of lines that the strict rules accept. Never throws.
///
/// Salvage semantics (pinned by test_shard_merge's SalvageMode suite):
///   - the header must parse strictly, else nothing is salvaged;
///   - records are accepted one by one under exactly the strict parser's
///     checks (CRC, field layout, ordering, plan membership) and
///     acceptance stops at the first offending line — every salvaged
///     chunk is one the strict parser would also accept, and a salvaged
///     prefix is always a prefix of what the intact stream carried;
///   - `complete` is true iff the whole stream is strictly valid
///     (records fulfil the header's promise and the trailer checks out),
///     in which case salvage equals parse_chunk_stream and `trailer` is
///     meaningful.
struct SalvagedStream {
  bool header_valid = false;
  ChunkStreamHeader header;
  std::vector<ChunkRecord> chunks;
  bool complete = false;
  ShardMetricsTrailer trailer;
  std::string source;
  /// Why salvage stopped short (empty when complete).
  std::string truncation_reason;
};

SalvagedStream salvage_chunk_stream(std::string_view text,
                                    std::string_view source);

/// Reads `path` and salvages it. An unreadable file yields an empty
/// salvage (header_valid=false) with the reason recorded — a dead
/// shard's missing stream is data loss, not a crash.
SalvagedStream salvage_chunk_stream_file(const std::string& path);

/// Serializes one shard's execution. `options` supplies the campaign
/// seed; the resolved geometry comes from exec.plan.
std::string serialize_chunk_stream(const Scenario& scenario,
                                   const CampaignOptions& options,
                                   const ShardExecution& exec);

/// Single-line serializers for incremental producers — the service
/// daemon frames these in its responses as chunks complete. Each
/// returns the exact sealed line (no trailing newline) that
/// serialize_chunk_stream would have written, so a client that collects
/// the header, every record sorted by ascending chunk id, and the
/// trailer, joined by '\n', holds a byte-identical, strictly parseable
/// v3 stream it can feed back through `--merge`.
std::string serialize_stream_header(const Scenario& scenario,
                                    const CampaignOptions& options,
                                    const ShardPlan& plan);
std::string serialize_chunk_record(
    const ChunkRef& ref,
    const std::array<StreamingStats, kMetricCount>& metrics);
std::string serialize_metrics_trailer(unsigned threads, double wall_seconds,
                                      const obs::Report& report);

/// Parses and validates one stream. `source` names the stream (file
/// path) in error messages. Throws ChunkStreamError.
ChunkStream parse_chunk_stream(std::string_view text,
                               std::string_view source);

/// Reads `path` and parses it. Throws ChunkStreamError (including for
/// unreadable files).
ChunkStream load_chunk_stream(const std::string& path);

/// Folds K shard streams into a CampaignResult whose per-point
/// aggregates — and therefore CSV/JSON reports — are bit-identical to
/// the serial single-process run of the same (scenario, seed, trials,
/// chunk size). Validates that the streams agree on every header field,
/// cover shard indices 0..K-1 exactly once, match the recomputed shard
/// plans chunk-for-chunk, and jointly cover every global chunk id
/// exactly once. Repair streams are rejected — recovered campaigns merge
/// through the dispatcher (dispatch.hpp), which validates an explicit
/// chunk cover instead. Every rejection names the offending shard,
/// stream source and record line. The result's runtime fields (wall
/// time, threads, pool counters) are zeroed — reports are canonical.
/// With `metrics` non-null the shard trailers are aggregated into it
/// (merge order never matters: Report::merge is integer addition).
/// Throws ChunkStreamError.
CampaignResult merge_chunk_streams(const Scenario& scenario,
                                   const std::vector<ChunkStream>& streams,
                                   MergedMetrics* metrics = nullptr);

}  // namespace hs::campaign
