/// @file
/// Versioned, self-describing chunk-stream serialization (JSONL) for
/// sharded multi-process campaigns, and the merge that folds shard
/// streams back into aggregates bit-identical to a serial run.
///
/// Wire format — one JSON object per line:
///
///   line 1    header: {"format":"hs-chunk-stream","version":1,
///             "scenario":...,"seed":...,"trials_per_point":...,
///             "chunk_size":...,"shard_count":K,"shard_index":i,
///             "point_count":...,"total_chunks":...,"chunk_count":N}
///   lines 2+  exactly N chunk records in ascending global chunk id:
///             {"chunk":id,"point":p,"trial_begin":a,"trial_end":b,
///              "metrics":{"<metric_name>":{"count":n,"mean":"0x...",
///              "m2":"0x...","min":"0x...","max":"0x..."}}}
///
/// Doubles travel as C99 hex-float strings ("0x1.5bf0a8b145769p+1"):
/// exact binary round trip, no decimal rounding, locale-proof. Only
/// metrics with samples are written.
///
/// The parser and merge are strict by design: truncated lines, missing
/// or duplicate chunk ids, chunk metadata that disagrees with the shard
/// plan, and header mismatches across streams (different scenario, seed,
/// trial count, chunk size, shard count or version) are hard errors —
/// never a silent partial merge.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/runner.hpp"

namespace hs::campaign {

/// Parse/validation failure in a chunk stream; the message names the
/// offending source and line.
class ChunkStreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr int kChunkStreamVersion = 1;

struct ChunkStreamHeader {
  int version = kChunkStreamVersion;
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t trials_per_point = 0;
  std::size_t chunk_size = 1;
  std::size_t shard_count = 1;
  std::size_t shard_index = 0;
  std::size_t point_count = 0;
  std::size_t total_chunks = 0;  ///< across ALL shards
  std::size_t chunk_count = 0;   ///< records in THIS stream
};

struct ChunkRecord {
  ChunkRef ref;
  std::array<StreamingStats, kMetricCount> metrics;
};

struct ChunkStream {
  ChunkStreamHeader header;
  std::vector<ChunkRecord> chunks;
};

/// Serializes one shard's execution. `options` supplies the campaign
/// seed; the resolved geometry comes from exec.plan.
std::string serialize_chunk_stream(const Scenario& scenario,
                                   const CampaignOptions& options,
                                   const ShardExecution& exec);

/// Parses and validates one stream. `source` names the stream (file
/// path) in error messages. Throws ChunkStreamError.
ChunkStream parse_chunk_stream(std::string_view text,
                               std::string_view source);

/// Reads `path` and parses it. Throws ChunkStreamError (including for
/// unreadable files).
ChunkStream load_chunk_stream(const std::string& path);

/// Folds K shard streams into a CampaignResult whose per-point
/// aggregates — and therefore CSV/JSON reports — are bit-identical to
/// the serial single-process run of the same (scenario, seed, trials,
/// chunk size). Validates that the streams agree on every header field,
/// cover shard indices 0..K-1 exactly once, match the recomputed shard
/// plans chunk-for-chunk, and jointly cover every global chunk id
/// exactly once. The result's runtime fields (wall time, threads, pool
/// counters) are zeroed — reports are canonical. Throws ChunkStreamError.
CampaignResult merge_chunk_streams(const Scenario& scenario,
                                   const std::vector<ChunkStream>& streams);

}  // namespace hs::campaign
