/// @file
/// Versioned, self-describing chunk-stream serialization (JSONL) for
/// sharded multi-process campaigns, and the merge that folds shard
/// streams back into aggregates bit-identical to a serial run.
///
/// Wire format — one JSON object per line:
///
///   line 1    header: {"format":"hs-chunk-stream","version":2,
///             "scenario":...,"seed":...,"trials_per_point":...,
///             "chunk_size":...,"shard_count":K,"shard_index":i,
///             "point_count":...,"total_chunks":...,"chunk_count":N}
///   lines 2+  exactly N chunk records in ascending global chunk id:
///             {"chunk":id,"point":p,"trial_begin":a,"trial_end":b,
///              "metrics":{"<metric_name>":{"count":n,"mean":"0x...",
///              "m2":"0x...","min":"0x...","max":"0x..."}}}
///   last line metrics trailer (v2+, mandatory): the shard's merged
///             observability report, so `--merge` can aggregate all K
///             shards' counters and phase timers:
///             {"trailer":"hs-metrics","version":1,"threads":T,
///              "wall_ns":W,"counters":{"<counter>":n,... every
///              obs::Counter in enum order},"phases":{"<phase>":
///              {"calls":c,"ns":t},... every obs::Phase in enum order}}
///
/// Doubles travel as C99 hex-float strings ("0x1.5bf0a8b145769p+1"):
/// exact binary round trip, no decimal rounding, locale-proof. Only
/// metrics with samples are written; trailer counters/phases are always
/// written (integers, zero included) so the trailer layout is fixed.
///
/// The parser and merge are strict by design: truncated lines, missing
/// or duplicate chunk ids, chunk metadata that disagrees with the shard
/// plan, a missing or malformed trailer, and header mismatches across
/// streams (different scenario, seed, trial count, chunk size, shard
/// count or version) are hard errors — never a silent partial merge.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/runner.hpp"

namespace hs::campaign {

/// Parse/validation failure in a chunk stream; the message names the
/// offending source and line.
class ChunkStreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// v2 appended the mandatory metrics trailer line (observability report
/// per shard). v1 streams are rejected — regenerate with --emit-chunks.
inline constexpr int kChunkStreamVersion = 2;

struct ChunkStreamHeader {
  int version = kChunkStreamVersion;
  std::string scenario;
  std::uint64_t seed = 0;
  std::size_t trials_per_point = 0;
  std::size_t chunk_size = 1;
  std::size_t shard_count = 1;
  std::size_t shard_index = 0;
  std::size_t point_count = 0;
  std::size_t total_chunks = 0;  ///< across ALL shards
  std::size_t chunk_count = 0;   ///< records in THIS stream
};

struct ChunkRecord {
  ChunkRef ref;
  std::array<StreamingStats, kMetricCount> metrics;
};

/// The shard's observability report as carried by the v2 trailer line.
struct ShardMetricsTrailer {
  int version = obs::kMetricsVersion;
  unsigned threads = 1;
  std::uint64_t wall_ns = 0;
  obs::Report report;
};

struct ChunkStream {
  ChunkStreamHeader header;
  std::vector<ChunkRecord> chunks;
  ShardMetricsTrailer trailer;
};

/// Aggregated observability across the K merged shard streams: thread
/// counts and wall time are summed (total CPU budget, not elapsed time),
/// the reports merged counter-by-counter. Kept separate from the
/// canonical CampaignResult, whose runtime fields stay zeroed.
struct MergedMetrics {
  std::size_t shards = 0;
  unsigned threads = 0;
  std::uint64_t wall_ns = 0;
  obs::Report report;
};

/// Serializes one shard's execution. `options` supplies the campaign
/// seed; the resolved geometry comes from exec.plan.
std::string serialize_chunk_stream(const Scenario& scenario,
                                   const CampaignOptions& options,
                                   const ShardExecution& exec);

/// Parses and validates one stream. `source` names the stream (file
/// path) in error messages. Throws ChunkStreamError.
ChunkStream parse_chunk_stream(std::string_view text,
                               std::string_view source);

/// Reads `path` and parses it. Throws ChunkStreamError (including for
/// unreadable files).
ChunkStream load_chunk_stream(const std::string& path);

/// Folds K shard streams into a CampaignResult whose per-point
/// aggregates — and therefore CSV/JSON reports — are bit-identical to
/// the serial single-process run of the same (scenario, seed, trials,
/// chunk size). Validates that the streams agree on every header field,
/// cover shard indices 0..K-1 exactly once, match the recomputed shard
/// plans chunk-for-chunk, and jointly cover every global chunk id
/// exactly once. The result's runtime fields (wall time, threads, pool
/// counters) are zeroed — reports are canonical. With `metrics` non-null
/// the shard trailers are aggregated into it (merge order never matters:
/// Report::merge is integer addition). Throws ChunkStreamError.
CampaignResult merge_chunk_streams(const Scenario& scenario,
                                   const std::vector<ChunkStream>& streams,
                                   MergedMetrics* metrics = nullptr);

}  // namespace hs::campaign
