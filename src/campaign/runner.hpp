/// @file
/// Parallel Monte Carlo campaign runner.
///
/// Expands a Scenario's sweep axis into points, fans (point, trial) work
/// units over a std::thread pool, and aggregates per-point statistics.
/// Determinism: every trial's seed is derived from (campaign seed,
/// scenario name, point index, trial index) through the named-substream
/// Rng, and chunk accumulators are merged in fixed chunk order — so
/// 1-thread and N-thread runs produce bit-identical aggregates.
///
/// Each worker owns a shield::TrialContext: deployments and experiment
/// nodes are reset-and-reseeded between trials instead of reconstructed
/// (reused trials are bit-identical to fresh ones; see trial_context.hpp).
/// CampaignOptions::reuse_deployments — the CLI's `--no-reuse` — turns
/// the pool off.
///
/// Chunks are scheduled through per-worker deques with work stealing: an
/// idle worker takes chunks from the tail of a busy worker's deque. Only
/// chunk boundaries — never the steal order — define the RNG streams and
/// the merge order, so the stolen schedule preserves bit-identity.
/// run_campaign_shard() runs one shard of a multi-process campaign on the
/// same pool (see shard.hpp / chunk_stream.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/scenario.hpp"
#include "campaign/shard.hpp"
#include "campaign/stats.hpp"
#include "obs/metrics.hpp"

namespace hs::shield {
class TrialContext;
}  // namespace hs::shield

namespace hs::snapshot {
class SnapshotCache;
}  // namespace hs::snapshot

namespace hs::campaign {

struct CampaignOptions {
  std::uint64_t seed = 1;
  /// Trials per sweep point; 0 uses the scenario's default_trials.
  std::size_t trials_per_point = 0;
  /// Worker threads; 0 uses std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Trials per work chunk. Chunk boundaries — not thread count — define
  /// the merge order, so this must stay fixed across runs being compared.
  /// One trial per chunk maximizes parallelism (a trial simulates a full
  /// deployment, so accumulator merge overhead is negligible).
  std::size_t chunk_size = 1;
  /// Reuse each worker's deployment across trials (reset + reseed) rather
  /// than reconstructing it per trial. Aggregates are bit-identical
  /// either way; false is the `--no-reuse` escape hatch.
  bool reuse_deployments = true;
  /// Restore post-warm-up deployment state from warm snapshots instead of
  /// re-simulating the warm-up on every trial (see src/snapshot/). The
  /// per-trial RNG streams always run two-phase (warm-up streams keyed by
  /// campaign_warmup_seed, trial streams by the trial seed), so
  /// aggregates are bit-identical with snapshots on or off — `false` is
  /// the `--no-snapshot` escape hatch that only disables the cache.
  bool snapshots = true;
  /// Directory for persisted `<key>.hsnap` snapshot files (must exist).
  /// Empty keeps the cache in-memory; set it to share one warm-up across
  /// the K processes of a sharded campaign.
  std::string snapshot_dir;
  /// Print periodic `shard i/K: chunks c/C` progress lines to stderr
  /// (enabled by the CLI's shard mode; tools/run_sharded.py multiplexes
  /// the streams of all shard processes).
  bool progress = false;
  /// Collect nanosecond phase timers (obs::Phase) alongside the
  /// always-on counters. Enabled by the CLI's `--metrics-json`; timers
  /// read clocks only, never RNG state, so aggregates are bit-identical
  /// with timers on or off.
  bool metrics_timers = false;
  /// Optional Chrome-trace span recorder (the CLI's `--trace`); not
  /// owned. Workers buffer spans thread-locally and flush them at chunk
  /// boundaries. Null disables tracing.
  obs::TraceRecorder* trace = nullptr;
  /// Optional liveness counter, incremented once per completed chunk
  /// (relaxed; not owned). The CLI's `--timeout-seconds` watchdog reads
  /// it to report partial progress when it aborts a hung campaign, and
  /// server-side request deadlines build on the same hook. Never read by
  /// the engine itself — aggregates are unaffected.
  std::atomic<std::size_t>* chunks_completed = nullptr;
};

/// Aggregates for one sweep point.
struct PointResult {
  std::size_t point_index = 0;
  double axis_value = 0.0;
  std::array<StreamingStats, kMetricCount> metrics;

  const StreamingStats& stats(Metric m) const {
    return metrics[static_cast<std::size_t>(m)];
  }
};

struct CampaignResult {
  Scenario scenario;
  CampaignOptions options;
  std::vector<PointResult> points;
  std::size_t total_trials = 0;
  double wall_seconds = 0.0;
  /// Trial-context pool effectiveness, summed over workers (reused stays
  /// 0 with reuse_deployments off or for kinds that need no deployment).
  std::size_t deployments_built = 0;
  std::size_t deployments_reused = 0;
  /// Chunks an idle worker took from another worker's deque. Schedule
  /// observability only — steals never affect aggregates.
  std::size_t chunks_stolen = 0;
  /// Warm-snapshot effectiveness: trials whose warm-up was skipped by a
  /// snapshot restore, and cold warm-ups published to the cache. Both 0
  /// with snapshots off.
  std::size_t snapshots_restored = 0;
  std::size_t snapshots_saved = 0;
  /// Merged observability report: every counter above plus (when
  /// CampaignOptions::metrics_timers was set) per-phase wall time.
  /// Runtime-only — reports/CSV/JSON never include it, so canonical
  /// outputs stay byte-identical with metrics on or off.
  obs::Report metrics;

  double trials_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(total_trials) / wall_seconds
               : 0.0;
  }
};

/// Deterministic per-trial seed derived via the Rng substream mechanism.
std::uint64_t trial_seed(std::uint64_t campaign_seed,
                         std::string_view scenario_name,
                         std::size_t point_index, std::size_t trial_index);

/// The warm-up seed every trial, worker and shard of a campaign shares
/// (two-phase seeding; see DeploymentOptions::warmup_seed). A pure
/// function of (campaign seed, scenario name) so shard processes agree
/// on it — and on the snapshot keys derived from it — without
/// communicating.
std::uint64_t campaign_warmup_seed(std::uint64_t campaign_seed,
                                   std::string_view scenario_name);

/// One metric sample produced by a trial.
struct TrialSample {
  Metric metric;
  double value;
};

/// Executes one trial of the scenario at the given sweep point (exposed
/// for tests; run_campaign is the normal entry point). With a
/// TrialContext the deployment and experiment nodes come from the pool —
/// bit-identical results, cheaper setup; with nullptr everything is
/// built fresh.
std::vector<TrialSample> run_trial(const Scenario& scenario,
                                   std::size_t point_index,
                                   double axis_value, std::uint64_t seed,
                                   shield::TrialContext* context = nullptr);

/// Pool-effectiveness counters run_chunk reports for the throwaway
/// (context == nullptr) path, where the per-trial contexts are internal
/// to the call. Matches the historical no-reuse accounting: built /
/// restored / saved only, within-trial resets excluded.
struct ChunkPoolCounters {
  std::size_t deployments_built = 0;
  std::size_t snapshots_restored = 0;
  std::size_t snapshots_saved = 0;
};

/// Executes one chunk and returns its metric accumulators — the
/// chunk-granular submission point for external schedulers (the service
/// daemon feeds interleaved chunks from many concurrent campaigns
/// through here). The trial seeds and the accumulation order depend
/// only on (campaign seed, scenario, chunk), never on which thread,
/// worker, pool or process runs the chunk, so any interleaving
/// reproduces the serial aggregates bit-for-bit once chunks are folded
/// in ascending chunk id.
///
/// `context` is the caller's resident TrialContext (its warm policy is
/// (re)applied from `warmup_seed`/`cache` on every call, so one context
/// may serve chunks of different campaigns back to back). A null
/// `context` builds a fresh context per trial — the `--no-reuse` A/B
/// baseline — accumulating pool counters into `fresh_counters` when
/// given. `warmup_seed` must come from campaign_warmup_seed(); `cache`
/// may be null (two-phase seeding stays on, only the snapshot cache is
/// bypassed).
std::array<StreamingStats, kMetricCount> run_chunk(
    const Scenario& scenario, std::uint64_t campaign_seed,
    const ChunkRef& chunk, shield::TrialContext* context,
    std::uint64_t warmup_seed, snapshot::SnapshotCache* cache,
    ChunkPoolCounters* fresh_counters = nullptr);

/// One shard's execution: per-chunk accumulators (parallel to
/// plan.chunks) plus the pool counters. Kept un-merged so the chunk
/// stream can serialize every chunk individually.
struct ShardExecution {
  ShardPlan plan;
  std::vector<std::array<StreamingStats, kMetricCount>> chunk_metrics;
  unsigned threads = 1;
  double wall_seconds = 0.0;
  std::size_t deployments_built = 0;
  std::size_t deployments_reused = 0;
  std::size_t chunks_stolen = 0;
  std::size_t snapshots_restored = 0;
  std::size_t snapshots_saved = 0;
  /// Merged-across-workers observability report for this shard; the
  /// chunk-stream trailer serializes it so `--merge` can aggregate all
  /// K shards' metrics (see chunk_stream.hpp).
  obs::Report metrics;
};

/// Runs an explicit chunk plan on the work-stealing pool — the engine
/// underneath both the round-robin shard path and the dispatcher's
/// repair tasks (make_repair_plan). Chunk ids, not the plan's provenance,
/// key every trial seed and accumulator, so a chunk executed by a repair
/// task is bit-identical to the same chunk executed by its original
/// shard.
ShardExecution run_campaign_chunks(const Scenario& scenario,
                                   const CampaignOptions& options,
                                   ShardPlan plan);

/// Runs shard `shard_index` of `shard_count` on the work-stealing pool.
/// (shard_count, shard_index) = (1, 0) executes the whole campaign —
/// run_campaign is exactly that plus the fixed-order chunk merge.
ShardExecution run_campaign_shard(const Scenario& scenario,
                                  const CampaignOptions& options,
                                  std::size_t shard_count,
                                  std::size_t shard_index);

/// Runs the full campaign on the configured worker pool.
CampaignResult run_campaign(const Scenario& scenario,
                            const CampaignOptions& options);

}  // namespace hs::campaign
