/// @file
/// Deterministic shard planning for multi-process campaigns.
///
/// A campaign's (point, trial) space expands into a fixed, globally
/// ordered chunk list — the same enumeration the in-process runner uses:
/// for each sweep point in order, trials grouped into chunks of
/// `chunk_size`. plan_shard() deals those chunks round-robin across K
/// shards, so shard i's plan is a pure function of (scenario, resolved
/// options, K, i) and shard processes never need to communicate. Each
/// shard executes only its own chunks; folding the per-chunk accumulators
/// back in ascending global chunk order reproduces the serial aggregates
/// bit-for-bit (chunk_stream.hpp defines the wire format and the merge).
#pragma once

#include <cstddef>
#include <vector>

#include "campaign/scenario.hpp"

namespace hs::campaign {

struct CampaignOptions;

/// One work chunk: a contiguous trial range at one sweep point, plus its
/// dense global id (the merge key).
struct ChunkRef {
  std::size_t chunk_index = 0;  ///< global chunk id across the whole campaign
  std::size_t point_index = 0;
  std::size_t trial_begin = 0;
  std::size_t trial_end = 0;

  bool operator==(const ChunkRef&) const = default;
};

/// The chunks one shard executes, plus the resolved campaign geometry
/// every shard must agree on before their streams may merge.
struct ShardPlan {
  std::size_t shard_count = 1;
  std::size_t shard_index = 0;
  std::size_t point_count = 0;
  std::size_t trials_per_point = 0;  ///< resolved (scenario default applied)
  std::size_t chunk_size = 1;        ///< resolved (clamped to >= 1)
  std::size_t total_chunks = 0;      ///< across ALL shards
  std::vector<ChunkRef> chunks;      ///< this shard's chunks, ascending ids
  /// True for a plan carrying an explicit chunk set (a dispatcher
  /// re-deal; see make_repair_plan) rather than the round-robin deal.
  /// Serialized as the chunk-stream header's "mode" field.
  bool repair = false;
};

/// Trials per point after applying the scenario default.
std::size_t resolved_trials(const Scenario& scenario,
                            const CampaignOptions& options);

/// Plans shard `shard_index` of `shard_count`. Keyed only by the
/// scenario's sweep shape and the resolved (trials, chunk_size) — NOT by
/// thread count or execution order. Throws std::invalid_argument when
/// shard_count == 0 or shard_index >= shard_count.
ShardPlan plan_shard(const Scenario& scenario, const CampaignOptions& options,
                     std::size_t shard_count, std::size_t shard_index);

/// Plans a repair task: the explicit `chunk_ids` out of the same global
/// enumeration plan_shard uses, sorted ascending. The plan keeps the
/// original campaign geometry (shard_count/shard_index label which worker
/// slot runs the repair) but sets `repair` so its stream skips the
/// round-robin membership rule. Throws std::invalid_argument for an
/// out-of-range or duplicate chunk id.
ShardPlan make_repair_plan(const Scenario& scenario,
                           const CampaignOptions& options,
                           std::size_t shard_count, std::size_t shard_index,
                           const std::vector<std::size_t>& chunk_ids);

}  // namespace hs::campaign
