#include "sim/trace.hpp"

#include <sstream>

#include "snapshot/state_io.hpp"

namespace hs::sim {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kTxStart:
      return "tx-start";
    case EventKind::kTxEnd:
      return "tx-end";
    case EventKind::kFrameReceived:
      return "frame-received";
    case EventKind::kFrameCorrupted:
      return "frame-corrupted";
    case EventKind::kCommandExecuted:
      return "command-executed";
    case EventKind::kJamStart:
      return "jam-start";
    case EventKind::kJamEnd:
      return "jam-end";
    case EventKind::kAlarm:
      return "alarm";
    case EventKind::kProbe:
      return "probe";
    case EventKind::kInfo:
      return "info";
  }
  return "unknown";
}

void EventLog::record(double time_s, std::string source, EventKind kind,
                      std::string detail) {
  events_.push_back({time_s, std::move(source), kind, std::move(detail)});
}

std::vector<Event> EventLog::filter(EventKind kind,
                                    std::string_view source) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == kind && (source.empty() || e.source == source)) {
      out.push_back(e);
    }
  }
  return out;
}

std::size_t EventLog::count(EventKind kind, std::string_view source) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind && (source.empty() || e.source == source)) ++n;
  }
  return n;
}

void EventLog::save_state(snapshot::StateWriter& w) const {
  w.begin("event-log");
  w.u64("events", events_.size());
  for (const Event& e : events_) {
    w.f64("t", e.time_s);
    w.str("source", e.source);
    w.u64("kind", static_cast<std::uint64_t>(e.kind));
    w.str("detail", e.detail);
  }
  w.end("event-log");
}

void EventLog::load_state(snapshot::StateReader& r) {
  r.begin("event-log");
  const std::uint64_t n = r.u64("events");
  events_.clear();
  events_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Event e;
    e.time_s = r.f64("t");
    e.source = r.str("source");
    const std::uint64_t kind = r.u64("kind");
    if (kind > static_cast<std::uint64_t>(EventKind::kInfo)) {
      throw snapshot::SnapshotError("snapshot: unknown event kind " +
                                    std::to_string(kind));
    }
    e.kind = static_cast<EventKind>(kind);
    e.detail = r.str("detail");
    events_.push_back(std::move(e));
  }
  r.end("event-log");
}

std::string EventLog::to_string() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << e.time_s << "s  [" << e.source << "] " << event_kind_name(e.kind);
    if (!e.detail.empty()) os << "  " << e.detail;
    os << '\n';
  }
  return os.str();
}

}  // namespace hs::sim
