#include "sim/trace.hpp"

#include <sstream>

namespace hs::sim {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kTxStart:
      return "tx-start";
    case EventKind::kTxEnd:
      return "tx-end";
    case EventKind::kFrameReceived:
      return "frame-received";
    case EventKind::kFrameCorrupted:
      return "frame-corrupted";
    case EventKind::kCommandExecuted:
      return "command-executed";
    case EventKind::kJamStart:
      return "jam-start";
    case EventKind::kJamEnd:
      return "jam-end";
    case EventKind::kAlarm:
      return "alarm";
    case EventKind::kProbe:
      return "probe";
    case EventKind::kInfo:
      return "info";
  }
  return "unknown";
}

void EventLog::record(double time_s, std::string source, EventKind kind,
                      std::string detail) {
  events_.push_back({time_s, std::move(source), kind, std::move(detail)});
}

std::vector<Event> EventLog::filter(EventKind kind,
                                    std::string_view source) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == kind && (source.empty() || e.source == source)) {
      out.push_back(e);
    }
  }
  return out;
}

std::size_t EventLog::count(EventKind kind, std::string_view source) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.kind == kind && (source.empty() || e.source == source)) ++n;
  }
  return n;
}

std::string EventLog::to_string() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << e.time_s << "s  [" << e.source << "] " << event_kind_name(e.kind);
    if (!e.detail.empty()) os << "  " << e.detail;
    os << '\n';
  }
  return os.str();
}

}  // namespace hs::sim
