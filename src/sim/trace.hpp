// Structured event log shared by all nodes: who transmitted/received/
// jammed/alarmed and when. Experiments assert on and print from this.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::sim {

enum class EventKind {
  kTxStart,
  kTxEnd,
  kFrameReceived,   ///< CRC-valid frame decoded
  kFrameCorrupted,  ///< frame detected but CRC failed
  kCommandExecuted,
  kJamStart,
  kJamEnd,
  kAlarm,
  kProbe,
  kInfo,
};

const char* event_kind_name(EventKind kind);

struct Event {
  double time_s = 0.0;
  std::string source;
  EventKind kind = EventKind::kInfo;
  std::string detail;
};

class EventLog {
 public:
  void record(double time_s, std::string source, EventKind kind,
              std::string detail = {});

  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// All events of the given kind, optionally filtered by source.
  std::vector<Event> filter(EventKind kind, std::string_view source = {}) const;

  /// Count of events of the given kind (optionally by source).
  std::size_t count(EventKind kind, std::string_view source = {}) const;

  /// Human-readable dump (for examples and debugging).
  std::string to_string() const;

  /// Warm-state snapshot round trip: experiments read warm-up events back
  /// out of the log (e.g. jam-end timestamps), so a restored deployment
  /// must carry the exact event history a replayed warm-up would leave.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  std::vector<Event> events_;
};

}  // namespace hs::sim
