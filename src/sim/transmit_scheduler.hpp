// Helper used by every transmitting node: queue waveforms to start at
// absolute sample indices, then emit the right slice each block.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/types.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::sim {

class TransmitScheduler {
 public:
  /// Schedules `waveform` to start at absolute sample `start`.
  /// Overlapping waveforms superpose.
  void schedule(std::size_t start, dsp::Samples waveform);

  /// Fills `out` (resized to `block_size`) with this block's samples.
  /// Returns true if anything non-zero was emitted.
  bool fill(std::size_t block_start, std::size_t block_size,
            dsp::Samples& out);

  /// True if any scheduled waveform overlaps [at, at+1).
  bool busy_at(std::size_t sample) const;

  /// Absolute sample index after the last scheduled sample (0 if idle).
  std::size_t busy_until() const;

  /// Drops all scheduled waveforms (used when a node switches to jamming
  /// mid-transmission).
  void cancel_all();

  bool empty() const { return entries_.empty(); }

  /// Warm-state snapshot round trip of every scheduled waveform — the
  /// "timing state" a restored node resumes from (e.g. an IMD reply
  /// scheduled during warm-up must still go out at its exact sample).
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  struct Entry {
    std::size_t start;
    dsp::Samples waveform;
  };
  std::vector<Entry> entries_;
};

}  // namespace hs::sim
