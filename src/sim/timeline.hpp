// Block-stepped simulation timeline: produce -> mix -> consume per block.
#pragma once

#include <cstddef>
#include <vector>

#include "channel/medium.hpp"
#include "sim/node.hpp"
#include "sim/trace.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::sim {

class Timeline {
 public:
  explicit Timeline(channel::Medium& medium);

  /// Registers a node. Nodes step in registration order. Not owned.
  void add_node(RadioNode* node);

  /// Drops all registered nodes, clears the event log and rewinds the
  /// block counter to zero. Callers re-register their (reset) nodes in
  /// construction order afterwards; used by Deployment::reset.
  void reset() {
    nodes_.clear();
    block_index_ = 0;
    log_.clear();
  }

  /// Advances one block.
  void step();

  /// Advances by (at least) the given duration.
  void run_for(double seconds);

  /// Advances until the predicate returns true or `max_seconds` elapse.
  /// Returns true if the predicate fired.
  template <typename Pred>
  bool run_until(Pred&& pred, double max_seconds) {
    const double deadline = now_s() + max_seconds;
    while (now_s() < deadline) {
      if (pred()) return true;
      step();
    }
    return pred();
  }

  std::size_t block_index() const { return block_index_; }
  std::size_t sample_position() const {
    return block_index_ * medium_.block_size();
  }
  double now_s() const {
    return static_cast<double>(sample_position()) / medium_.fs();
  }

  EventLog& log() { return log_; }
  const EventLog& log() const { return log_; }
  channel::Medium& medium() { return medium_; }

  /// Warm-state snapshot round trip: block counter + event log. Restoring
  /// drops all registered nodes — the deployment re-registers its (also
  /// restored) nodes in construction order afterwards, exactly as after
  /// reset().
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  channel::Medium& medium_;
  std::vector<RadioNode*> nodes_;
  std::size_t block_index_ = 0;
  EventLog log_;
};

}  // namespace hs::sim
