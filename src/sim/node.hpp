// RadioNode: the interface every over-the-air participant implements
// (IMD, programmer, shield, adversaries, observers).
//
// The timeline advances in fixed blocks. Each block every node first
// *produces* its transmit samples, then the medium mixes, then every node
// *consumes* what its antennas received. A node therefore reacts to block
// k's air at the earliest in block k+1 — one block of genuine processing
// latency, which is what gives the shield a realistic, measurable
// turn-around time (Table 2 of the paper).
#pragma once

#include <cstddef>
#include <string_view>

#include "channel/medium.hpp"

namespace hs::sim {

struct StepContext {
  std::size_t block_index = 0;
  std::size_t block_size = 0;
  double fs = 0.0;

  /// Absolute sample index of the first sample in this block.
  std::size_t block_start_sample() const { return block_index * block_size; }
  /// Wall-clock time of the block start, in seconds.
  double block_start_s() const {
    return static_cast<double>(block_start_sample()) / fs;
  }
  double sample_duration_s() const { return 1.0 / fs; }
};

class RadioNode {
 public:
  virtual ~RadioNode() = default;

  /// Writes this block's transmissions into the medium (Medium::set_tx).
  virtual void produce(const StepContext& ctx, channel::Medium& medium) = 0;

  /// Reads this block's received samples (Medium::rx) and updates state.
  virtual void consume(const StepContext& ctx, channel::Medium& medium) = 0;

  virtual std::string_view name() const = 0;
};

}  // namespace hs::sim
