#include "sim/transmit_scheduler.hpp"

#include <algorithm>

#include "snapshot/state_io.hpp"

namespace hs::sim {

void TransmitScheduler::schedule(std::size_t start, dsp::Samples waveform) {
  if (waveform.empty()) return;
  entries_.push_back({start, std::move(waveform)});
}

bool TransmitScheduler::fill(std::size_t block_start, std::size_t block_size,
                             dsp::Samples& out) {
  out.assign(block_size, dsp::cplx{});
  bool any = false;
  const std::size_t block_end = block_start + block_size;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const std::size_t w_start = it->start;
    const std::size_t w_end = w_start + it->waveform.size();
    if (w_end <= block_start) {
      it = entries_.erase(it);  // fully in the past
      continue;
    }
    if (w_start < block_end) {
      const std::size_t from = std::max(w_start, block_start);
      const std::size_t to = std::min(w_end, block_end);
      for (std::size_t s = from; s < to; ++s) {
        out[s - block_start] += it->waveform[s - w_start];
      }
      any = true;
    }
    ++it;
  }
  return any;
}

bool TransmitScheduler::busy_at(std::size_t sample) const {
  for (const auto& e : entries_) {
    if (sample >= e.start && sample < e.start + e.waveform.size()) return true;
  }
  return false;
}

std::size_t TransmitScheduler::busy_until() const {
  std::size_t until = 0;
  for (const auto& e : entries_) {
    until = std::max(until, e.start + e.waveform.size());
  }
  return until;
}

void TransmitScheduler::cancel_all() { entries_.clear(); }

void TransmitScheduler::save_state(snapshot::StateWriter& w) const {
  w.begin("tx-sched");
  w.u64("entries", entries_.size());
  for (const Entry& e : entries_) {
    w.u64("start", e.start);
    w.samples("waveform", e.waveform);
  }
  w.end("tx-sched");
}

void TransmitScheduler::load_state(snapshot::StateReader& r) {
  r.begin("tx-sched");
  const std::uint64_t n = r.u64("entries");
  entries_.clear();
  entries_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Entry e;
    e.start = r.u64("start");
    e.waveform = r.samples("waveform");
    entries_.push_back(std::move(e));
  }
  r.end("tx-sched");
}

}  // namespace hs::sim
