#include "sim/timeline.hpp"

#include <cmath>

namespace hs::sim {

Timeline::Timeline(channel::Medium& medium) : medium_(medium) {}

void Timeline::add_node(RadioNode* node) { nodes_.push_back(node); }

void Timeline::step() {
  StepContext ctx;
  ctx.block_index = block_index_;
  ctx.block_size = medium_.block_size();
  ctx.fs = medium_.fs();

  medium_.begin_block();
  for (RadioNode* node : nodes_) node->produce(ctx, medium_);
  medium_.mix();
  for (RadioNode* node : nodes_) node->consume(ctx, medium_);
  ++block_index_;
}

void Timeline::run_for(double seconds) {
  const auto blocks = static_cast<std::size_t>(std::ceil(
      seconds * medium_.fs() / static_cast<double>(medium_.block_size())));
  for (std::size_t i = 0; i < blocks; ++i) step();
}

}  // namespace hs::sim
