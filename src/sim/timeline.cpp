#include "sim/timeline.hpp"

#include <cmath>

#include "snapshot/state_io.hpp"

namespace hs::sim {

Timeline::Timeline(channel::Medium& medium) : medium_(medium) {}

void Timeline::add_node(RadioNode* node) { nodes_.push_back(node); }

void Timeline::step() {
  StepContext ctx;
  ctx.block_index = block_index_;
  ctx.block_size = medium_.block_size();
  ctx.fs = medium_.fs();

  medium_.begin_block();
  for (RadioNode* node : nodes_) node->produce(ctx, medium_);
  medium_.mix();
  for (RadioNode* node : nodes_) node->consume(ctx, medium_);
  ++block_index_;
}

void Timeline::run_for(double seconds) {
  const auto blocks = static_cast<std::size_t>(std::ceil(
      seconds * medium_.fs() / static_cast<double>(medium_.block_size())));
  for (std::size_t i = 0; i < blocks; ++i) step();
}

void Timeline::save_state(snapshot::StateWriter& w) const {
  w.begin("timeline");
  w.u64("block_index", block_index_);
  log_.save_state(w);
  w.end("timeline");
}

void Timeline::load_state(snapshot::StateReader& r) {
  r.begin("timeline");
  nodes_.clear();
  block_index_ = r.u64("block_index");
  log_.load_state(r);
  r.end("timeline");
}

}  // namespace hs::sim
