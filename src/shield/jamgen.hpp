// Jamming-signal generation (paper section 6(a)).
//
// The shield jams with *random* noise (no modulation or coding) so the
// jamming acts as a one-time pad and keeps the eavesdropper's total
// information rate outside the multi-user capacity region. To spend its
// power budget where it matters, it shapes the noise spectrum to match the
// IMD's FSK power profile: white Gaussian noise is drawn per frequency
// bin, weighted by the IMD profile, and IFFT'd to the time domain (Fig. 5).
// An oblivious constant-profile mode is provided as the ablation baseline
// an adversary could band-pass filter around.
#pragma once

#include <cstdint>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "phy/fsk.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::shield {

enum class JamProfile {
  kShaped,    ///< matched to the IMD's FSK spectrum (the paper's design)
  kConstant,  ///< flat across the 300 kHz channel (ablation baseline)
};

/// Empirical per-bin power profile of the given FSK modulation, estimated
/// from a long random-bit transmission; normalized to unit mean power.
std::vector<double> fsk_power_profile(const phy::FskParams& fsk,
                                      std::size_t fft_size,
                                      std::uint64_t seed = 7);

class JammingSignalGenerator {
 public:
  JammingSignalGenerator(const phy::FskParams& fsk, JamProfile profile,
                         std::uint64_t seed, std::size_t fft_size = 256);

  /// Returns the generator to its just-constructed state under new
  /// parameters. The empirical FSK power profile — the expensive part of
  /// construction (a long modulation plus a Welch PSD) — is recomputed
  /// only when `fsk` or `fft_size` differ from the current ones; it does
  /// not depend on the seed, so reusing it keeps the output stream
  /// bit-identical to a fresh generator's.
  void reset(const phy::FskParams& fsk, JamProfile profile,
             std::uint64_t seed, std::size_t fft_size);

  /// Sets the target mean transmit power (linear mW).
  void set_power(double power_mw);
  double power() const { return power_mw_; }

  void set_profile(JamProfile profile);
  JamProfile profile() const { return profile_; }

  /// Produces the next `n` samples of the jamming stream.
  dsp::Samples next(std::size_t n);

  /// Split-complex variant: overwrites `out` with the next `n` samples.
  /// Draws the same stream as next() (plane copies instead of
  /// interleaving), feeding Medium::set_tx(SoaView) and the antidote
  /// without a layout conversion.
  void next(std::size_t n, dsp::SoaSamples& out);

  /// Two-phase seeding, trial half: restarts the jamming stream on a
  /// fresh per-trial RNG stream and discards any buffered samples, so
  /// every trial's one-time pad is independent. Profile, weights and
  /// power — the calibration — are untouched.
  void reseed(std::uint64_t trial_seed);

  /// Warm-state snapshot round trip: RNG position, buffered stream slice
  /// and cursor, power, profile mode, and the cached empirical FSK
  /// profile (shaped_weights_) — carrying the profile in the snapshot is
  /// what lets a fresh shard process skip the expensive spectral
  /// estimation entirely. The load target must share fft_size and FSK
  /// parameters (enforced; they shape the stream).
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

  /// The per-bin weights currently in use (FFT order, DC first).
  const std::vector<double>& bin_weights() const { return weights_; }

  std::size_t fft_size() const { return fft_size_; }

 private:
  void refill();
  void rebuild_weights();

  phy::FskParams fsk_;
  JamProfile profile_;
  dsp::Rng rng_;
  std::size_t fft_size_;
  double power_mw_ = 1.0;
  std::vector<double> shaped_weights_;  // unit-mean FSK profile
  std::vector<double> weights_;         // active profile
  double scale_ = 1.0;                  // per-sample amplitude scale
  dsp::SoaSamples buffer_;  // split-complex IFFT output, consumed in slices
  std::size_t buffer_pos_ = 0;
};

}  // namespace hs::shield
