#include "shield/battery_life.hpp"

namespace hs::shield {

BatteryLifeEstimate estimate_battery_life(const ShieldPowerModel& model,
                                          double daily_session_s) {
  BatteryLifeEstimate out;
  // Idle: monitor + baseline only.
  const double idle_mw = model.rx_chain_mw + model.baseline_mw;
  out.idle_hours = model.battery_mwh / idle_mw;

  // Typical monitoring day: idle draw plus the transmit chain for the
  // daily session duty cycle.
  const double duty = daily_session_s / 86400.0;
  const double monitoring_mw = idle_mw + duty * model.tx_chain_mw;
  out.monitoring_hours = model.battery_mwh / monitoring_mw;

  // Continuous attack: everything on, all the time.
  const double attack_mw =
      model.rx_chain_mw + model.baseline_mw + model.tx_chain_mw;
  out.under_attack_hours = model.battery_mwh / attack_mw;
  return out;
}

}  // namespace hs::shield
