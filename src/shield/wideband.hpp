// Whole-band surveillance (paper section 7(c)).
//
// "The shield can listen to the entire 3 MHz MICS band ... This monitoring
// allows the shield to detect and counter adversarial transmissions even
// if the adversary uses frequency hopping or transmits in multiple
// channels simultaneously to try to confuse the shield."
//
// The WidebandMonitor is that front end: a 3 MHz stream enters, the
// channelizer splits it into ten 300 kHz baseband streams, and each stream
// runs its own FSK receiver plus S_id matcher. Any channel whose partially
// decoded bits match S_id within b_thresh is flagged for jamming.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "mics/channelizer.hpp"
#include "phy/receiver.hpp"
#include "shield/sid_matcher.hpp"

namespace hs::shield {

struct WidebandChannelState {
  bool sid_matched = false;     ///< S_id seen; channel must be jammed
  std::size_t frames_seen = 0;  ///< completed receiver frames
  std::size_t matches = 0;      ///< total S_id matches on this channel
  double last_rssi = 0.0;       ///< of the most recent completed frame
};

class WidebandMonitor {
 public:
  /// `protected_id` selects S_id; `fsk` is the per-channel modulation.
  WidebandMonitor(const phy::DeviceId& protected_id,
                  const phy::FskParams& fsk, std::size_t bthresh = 4);

  /// Consumes wideband samples at 3 MHz (any block size).
  void push(dsp::SampleView wideband);

  /// Per-channel activity since the last clear_matches().
  const std::array<WidebandChannelState, mics::kChannelCount>& channels()
      const {
    return state_;
  }

  /// Channels whose current/last packet matched S_id (bitmask, bit i =
  /// channel i) — the shield jams exactly these.
  std::uint16_t jam_mask() const;

  /// True if any channel currently demands jamming.
  bool any_match() const { return jam_mask() != 0; }

  /// Re-arms the per-channel matchers (after jamming concluded).
  void clear_matches();

  /// Total wideband samples consumed.
  std::size_t sample_position() const { return consumed_; }

 private:
  struct PerChannel {
    std::unique_ptr<phy::FskReceiver> receiver;
    std::unique_ptr<SidMatcher> matcher;
    std::size_t checked_bits = 0;
    std::size_t lock_start = 0;
  };

  mics::Channelizer channelizer_;
  std::array<dsp::Samples, mics::kChannelCount> scratch_;
  std::array<PerChannel, mics::kChannelCount> per_channel_;
  std::array<WidebandChannelState, mics::kChannelCount> state_;
  std::size_t consumed_ = 0;
};

}  // namespace hs::shield
