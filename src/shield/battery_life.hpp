// Shield battery-life estimation (paper section 7(e)).
//
// "In the absence of attacks, the shield jams only the IMD's transmissions
// and hence transmits approximately as often as the IMD ... When the IMD
// is under an active attack, the shield will have to transmit as often as
// the adversary. However, since the shield transmits at the FCC power
// limit for the MICS band, it can last for a day or longer even if
// transmitting continuously."
#pragma once

namespace hs::shield {

struct ShieldPowerModel {
  /// Wearable battery capacity in milliwatt-hours (a small necklace cell).
  double battery_mwh = 1200.0;
  /// Radiated power at the FCC MICS limit is 25 uW; the radio chain
  /// consumes far more. Power-amplifier chain draw while jamming (mW).
  double tx_chain_mw = 45.0;
  /// Receive/monitor chain draw (always on; the shield listens
  /// continuously), mW.
  double rx_chain_mw = 18.0;
  /// Baseband/control electronics, mW.
  double baseline_mw = 5.0;
};

struct BatteryLifeEstimate {
  double idle_hours = 0.0;            ///< no IMD sessions, no attacks
  double monitoring_hours = 0.0;      ///< typical day: brief IMD sessions
  double under_attack_hours = 0.0;    ///< jamming continuously
};

/// `daily_session_s`: seconds per day the shield spends jamming IMD reply
/// windows during legitimate telemetry sessions.
BatteryLifeEstimate estimate_battery_life(const ShieldPowerModel& model,
                                          double daily_session_s = 120.0);

}  // namespace hs::shield
