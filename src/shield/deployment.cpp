#include "shield/deployment.hpp"

#include "channel/geometry.hpp"

namespace hs::shield {

namespace {

ShieldConfig shield_config_for(const DeploymentOptions& options) {
  ShieldConfig cfg = options.shield_config;
  cfg.protected_id = options.imd_profile.serial;
  cfg.fsk = options.imd_profile.fsk;
  return cfg;
}

adversary::MonitorConfig observer_config_for(const DeploymentOptions& options) {
  adversary::MonitorConfig mcfg;
  mcfg.name = "observer";
  mcfg.position = channel::kImdPosition;
  mcfg.body_loss_db = options.imd_profile.body_loss_db;
  mcfg.fsk = options.imd_profile.fsk;
  return mcfg;
}

}  // namespace

Deployment::Deployment(const DeploymentOptions& options) : options_(options) {
  medium_ = std::make_unique<channel::Medium>(
      options_.imd_profile.fsk.fs, options_.block_size, options_.seed,
      options_.budget);
  timeline_ = std::make_unique<sim::Timeline>(*medium_);

  imd_ = std::make_unique<imd::ImdDevice>(options_.imd_profile, *medium_,
                                          &timeline_->log(), options_.seed);
  timeline_->add_node(imd_.get());

  if (options_.shield_present) {
    shield_ = std::make_unique<ShieldNode>(shield_config_for(options_),
                                           *medium_, &timeline_->log(),
                                           options_.seed);
    timeline_->add_node(shield_.get());
    wire_shield_directivity();
  }

  if (options_.with_observer) {
    observer_ = std::make_unique<adversary::MonitorNode>(
        observer_config_for(options_), *medium_);
    timeline_->add_node(observer_.get());
  }

  if (options_.warmup_s > 0.0) timeline_->run_for(options_.warmup_s);
}

void Deployment::wire_shield_directivity() {
  // The necklace's antennas face outward, away from the chest: extra
  // attenuation from the shield toward the IMD (calibrated vs Table 1).
  medium_->add_pair_loss(shield_->jam_antenna(), imd_->antenna(),
                         channel::kShieldToImdDirectivityLossDb);
  medium_->add_pair_loss(shield_->rx_antenna(), imd_->antenna(),
                         channel::kShieldToImdDirectivityLossDb);
}

bool Deployment::can_reset_to(const DeploymentOptions& options) const {
  return options.shield_present == (shield_ != nullptr) &&
         options.with_observer == (observer_ != nullptr);
}

void Deployment::reset(const DeploymentOptions& options) {
  // Mirror of the constructor: every step that consumed randomness or
  // registered state at construction replays in the same order, so the
  // reset deployment is bit-identical to a fresh one.
  options_ = options;
  medium_->reset(options_.imd_profile.fsk.fs, options_.block_size,
                 options_.seed, options_.budget);
  timeline_->reset();

  imd_->reset(options_.imd_profile, *medium_, &timeline_->log(),
              options_.seed);
  timeline_->add_node(imd_.get());

  if (shield_ != nullptr) {
    shield_->reset(shield_config_for(options_), *medium_, &timeline_->log(),
                   options_.seed);
    timeline_->add_node(shield_.get());
    wire_shield_directivity();
  }

  if (observer_ != nullptr) {
    observer_->reset(observer_config_for(options_), *medium_);
    timeline_->add_node(observer_.get());
  }

  if (options_.warmup_s > 0.0) timeline_->run_for(options_.warmup_s);
}

}  // namespace hs::shield
