#include "shield/deployment.hpp"

#include "channel/geometry.hpp"
#include "obs/metrics.hpp"
#include "snapshot/state_io.hpp"

namespace hs::shield {

namespace {

/// Seed every construction/warm-up stream draws from. In two-phase mode
/// (warmup_seed != 0) this is the warm-up seed — shared by every trial of
/// a campaign point — and begin_trial() moves the per-trial streams onto
/// the trial seed afterwards.
std::uint64_t build_seed_for(const DeploymentOptions& options) {
  return options.warmup_seed != 0 ? options.warmup_seed : options.seed;
}

ShieldConfig shield_config_for(const DeploymentOptions& options) {
  ShieldConfig cfg = options.shield_config;
  cfg.protected_id = options.imd_profile.serial;
  cfg.fsk = options.imd_profile.fsk;
  return cfg;
}

/// Digest of the configuration alone — seeds and warm-up duration
/// normalized away. restore_warm() uses it to decide whether the target
/// deployment's nodes already carry the right configuration (profile,
/// shield config, link budget) or must be reconfigured before their
/// state is loaded over them.
std::string config_key(const DeploymentOptions& options) {
  DeploymentOptions c = options;
  c.seed = 0;
  c.warmup_seed = 1;
  c.warmup_s = 0.0;
  return deployment_warm_key(c);
}

adversary::MonitorConfig observer_config_for(const DeploymentOptions& options) {
  adversary::MonitorConfig mcfg;
  mcfg.name = "observer";
  mcfg.position = channel::kImdPosition;
  mcfg.body_loss_db = options.imd_profile.body_loss_db;
  mcfg.fsk = options.imd_profile.fsk;
  return mcfg;
}

}  // namespace

Deployment::Deployment(const DeploymentOptions& options) : options_(options) {
  const std::uint64_t seed = build_seed_for(options_);
  medium_ = std::make_unique<channel::Medium>(
      options_.imd_profile.fsk.fs, options_.block_size, seed,
      options_.budget);
  timeline_ = std::make_unique<sim::Timeline>(*medium_);

  imd_ = std::make_unique<imd::ImdDevice>(options_.imd_profile, *medium_,
                                          &timeline_->log(), seed);
  timeline_->add_node(imd_.get());

  if (options_.shield_present) {
    shield_ = std::make_unique<ShieldNode>(shield_config_for(options_),
                                           *medium_, &timeline_->log(), seed);
    timeline_->add_node(shield_.get());
    wire_shield_directivity();
  }

  if (options_.with_observer) {
    observer_ = std::make_unique<adversary::MonitorNode>(
        observer_config_for(options_), *medium_);
    timeline_->add_node(observer_.get());
  }

  if (options_.warmup_s > 0.0) {
    obs::ScopedTimer timer(obs::Phase::kWarmup);
    obs::TraceSpan span("deploy", "warmup");
    timeline_->run_for(options_.warmup_s);
  }
  begin_trial(options_.seed);
}

Deployment::Deployment(const snapshot::StateDoc& warm,
                       const DeploymentOptions& options)
    : Deployment([&options] {
        // Build the node set without simulating the warm-up — every field
        // the skipped warm-up would have produced is about to be restored.
        DeploymentOptions skip = options;
        skip.warmup_s = 0.0;
        return skip;
      }()) {
  restore_warm(warm, options);
}

void Deployment::wire_shield_directivity() {
  // The necklace's antennas face outward, away from the chest: extra
  // attenuation from the shield toward the IMD (calibrated vs Table 1).
  medium_->add_pair_loss(shield_->jam_antenna(), imd_->antenna(),
                         channel::kShieldToImdDirectivityLossDb);
  medium_->add_pair_loss(shield_->rx_antenna(), imd_->antenna(),
                         channel::kShieldToImdDirectivityLossDb);
}

bool Deployment::can_reset_to(const DeploymentOptions& options) const {
  return options.shield_present == (shield_ != nullptr) &&
         options.with_observer == (observer_ != nullptr);
}

void Deployment::reset(const DeploymentOptions& options) {
  // Mirror of the constructor: every step that consumed randomness or
  // registered state at construction replays in the same order, so the
  // reset deployment is bit-identical to a fresh one.
  options_ = options;
  const std::uint64_t seed = build_seed_for(options_);
  medium_->reset(options_.imd_profile.fsk.fs, options_.block_size, seed,
                 options_.budget);
  timeline_->reset();

  imd_->reset(options_.imd_profile, *medium_, &timeline_->log(), seed);
  timeline_->add_node(imd_.get());

  if (shield_ != nullptr) {
    shield_->reset(shield_config_for(options_), *medium_, &timeline_->log(),
                   seed);
    timeline_->add_node(shield_.get());
    wire_shield_directivity();
  }

  if (observer_ != nullptr) {
    observer_->reset(observer_config_for(options_), *medium_);
    timeline_->add_node(observer_.get());
  }

  if (options_.warmup_s > 0.0) {
    obs::ScopedTimer timer(obs::Phase::kWarmup);
    obs::TraceSpan span("deploy", "warmup");
    timeline_->run_for(options_.warmup_s);
  }
  begin_trial(options_.seed);
}

void Deployment::begin_trial(std::uint64_t trial_seed) {
  if (options_.warmup_seed == 0) return;  // legacy single-phase seeding
  medium_->reseed_trial(trial_seed);
  imd_->reseed(trial_seed);
  if (shield_ != nullptr) shield_->reseed(trial_seed);
}

std::string Deployment::save_warm() const {
  snapshot::StateWriter w;
  w.begin("deployment");
  w.str("key", deployment_warm_key(options_));
  medium_->save_state(w);
  timeline_->save_state(w);
  imd_->save_state(w);
  w.boolean("shield", shield_ != nullptr);
  if (shield_ != nullptr) shield_->save_state(w);
  w.boolean("observer", observer_ != nullptr);
  if (observer_ != nullptr) observer_->save_state(w);
  w.end("deployment");
  return w.finish();
}

void Deployment::restore_warm(const snapshot::StateDoc& doc,
                              const DeploymentOptions& options) {
  if (!can_reset_to(options)) {
    throw snapshot::SnapshotError(
        "snapshot: deployment node set does not match the restore target");
  }
  snapshot::StateReader r(doc);
  r.begin("deployment");
  if (r.str("key") != deployment_warm_key(options)) {
    throw snapshot::SnapshotError(
        "snapshot: warm key mismatch — snapshot was taken from a different "
        "deployment configuration or warm-up seed");
  }
  if (config_key(options_) != config_key(options)) {
    // The pooled target last held a different configuration (another
    // sweep point, another IMD profile). load_state only carries state —
    // configuration members (shield config, IMD profile, observer
    // geometry) are the nodes' own — so reconfigure them first with a
    // warm-up-free reset; the loads below then overwrite every stateful
    // field with the snapshot's.
    DeploymentOptions cfg = options;
    cfg.warmup_s = 0.0;
    reset(cfg);
  }
  options_ = options;
  medium_->load_state(r);
  timeline_->load_state(r);  // drops all node registrations
  imd_->load_state(r);
  timeline_->add_node(imd_.get());
  if (r.boolean("shield") != (shield_ != nullptr)) {
    throw snapshot::SnapshotError("snapshot: shield presence mismatch");
  }
  if (shield_ != nullptr) {
    shield_->load_state(r);
    timeline_->add_node(shield_.get());
    // No wire_shield_directivity(): the pair losses it installs were part
    // of the medium state and came back with Medium::load_state.
  }
  if (r.boolean("observer") != (observer_ != nullptr)) {
    throw snapshot::SnapshotError("snapshot: observer presence mismatch");
  }
  if (observer_ != nullptr) {
    observer_->load_state(r);
    timeline_->add_node(observer_.get());
  }
  r.end("deployment");
  r.expect_exhausted();
  begin_trial(options_.seed);
}

std::string deployment_warm_key(const DeploymentOptions& o) {
  // Serialize through the StateWriter so doubles digest by exact bits
  // (hex-float), never by rounded decimal text.
  snapshot::StateWriter w;
  w.begin("warm-key");
  // In two-phase mode the trial seed is excluded on purpose: the
  // post-warm-up state is a pure function of configuration + warmup_seed,
  // which is exactly what makes one snapshot serve every trial. In legacy
  // single-phase mode warm-up consumed the trial seed, so it keys.
  w.u64("seed", o.warmup_seed != 0 ? 0 : o.seed);
  w.u64("warmup_seed", o.warmup_seed);
  const imd::ImdProfile& p = o.imd_profile;
  w.str("imd.model", p.model_name);
  w.bytes("imd.serial", p.serial.data(), p.serial.size());
  w.f64("imd.fsk.fs", p.fsk.fs);
  w.u64("imd.fsk.sps", p.fsk.sps);
  w.f64("imd.fsk.f0", p.fsk.f0);
  w.f64("imd.fsk.f1", p.fsk.f1);
  w.f64("imd.reply_delay_mean_s", p.reply_delay_mean_s);
  w.f64("imd.reply_delay_jitter_s", p.reply_delay_jitter_s);
  w.f64("imd.max_packet_duration_s", p.max_packet_duration_s);
  w.f64("imd.tx_power_dbm", p.tx_power_dbm);
  w.f64("imd.body_loss_db", p.body_loss_db);
  w.f64("imd.sensitivity_dbm", p.sensitivity_dbm);
  w.u64("imd.data_chunk_bytes", p.data_chunk_bytes);
  w.boolean("shield_present", o.shield_present);
  w.boolean("with_observer", o.with_observer);
  w.u64("block_size", o.block_size);
  const channel::LinkBudgetConfig& b = o.budget;
  w.f64("budget.carrier_hz", b.pathloss.carrier_hz);
  w.f64("budget.exponent", b.pathloss.exponent);
  w.f64("budget.wall_loss_db", b.pathloss.wall_loss_db);
  w.f64("budget.reference_m", b.pathloss.reference_m);
  w.f64("budget.min_distance_m", b.pathloss.min_distance_m);
  w.f64("budget.noise_floor_dbm", b.noise_floor_dbm);
  w.f64("budget.fcc_limit_dbm", b.fcc_limit_dbm);
  w.f64("budget.shadowing_sigma_db", b.shadowing_sigma_db);
  w.f64("budget.shadowing_min_distance_m", b.shadowing_min_distance_m);
  const ShieldConfig& c = o.shield_config;
  w.bytes("cfg.protected_id", c.protected_id.data(), c.protected_id.size());
  w.f64("cfg.fsk.fs", c.fsk.fs);
  w.u64("cfg.fsk.sps", c.fsk.sps);
  w.f64("cfg.fsk.f0", c.fsk.f0);
  w.f64("cfg.fsk.f1", c.fsk.f1);
  w.f64("cfg.t1_s", c.t1_s);
  w.f64("cfg.t2_s", c.t2_s);
  w.f64("cfg.max_packet_s", c.max_packet_s);
  w.f64("cfg.max_tx_power_dbm", c.max_tx_power_dbm);
  w.f64("cfg.jam_margin_db", c.jam_margin_db);
  w.f64("cfg.initial_imd_rssi_dbm", c.initial_imd_rssi_dbm);
  w.boolean("cfg.enable_active_protection", c.enable_active_protection);
  w.u64("cfg.bthresh", c.bthresh);
  w.f64("cfg.pthresh_dbm", c.pthresh_dbm);
  w.boolean("cfg.alarm_enabled", c.alarm_enabled);
  w.u64("cfg.min_active_jam_blocks", c.min_active_jam_blocks);
  w.u64("cfg.idle_confirm_blocks", c.idle_confirm_blocks);
  w.f64("cfg.idle_factor", c.idle_factor);
  w.f64("cfg.nominal_cancellation_db", c.nominal_cancellation_db);
  w.boolean("cfg.enable_passive_jamming", c.enable_passive_jamming);
  w.f64("cfg.probe_interval_s", c.probe_interval_s);
  w.f64("cfg.probe_power_dbm", c.probe_power_dbm);
  w.u64("cfg.probe_length", c.probe_length);
  w.f64("cfg.hardware_error_sigma", c.hardware_error_sigma);
  w.f64("cfg.self_coupling_db", c.self_coupling_db);
  w.f64("cfg.jam_rec_coupling_db", c.jam_rec_coupling_db);
  w.u64("cfg.jam_profile", static_cast<std::uint64_t>(c.jam_profile));
  w.u64("cfg.jam_fft_size", c.jam_fft_size);
  w.f64("warmup_s", o.warmup_s);
  w.end("warm-key");
  return snapshot::sha256_hex(w.finish());
}

}  // namespace hs::shield
