#include "shield/deployment.hpp"

#include "channel/geometry.hpp"

namespace hs::shield {

Deployment::Deployment(const DeploymentOptions& options) : options_(options) {
  medium_ = std::make_unique<channel::Medium>(
      options_.imd_profile.fsk.fs, options_.block_size, options_.seed,
      options_.budget);
  timeline_ = std::make_unique<sim::Timeline>(*medium_);

  imd_ = std::make_unique<imd::ImdDevice>(options_.imd_profile, *medium_,
                                          &timeline_->log(), options_.seed);
  timeline_->add_node(imd_.get());

  if (options_.shield_present) {
    ShieldConfig cfg = options_.shield_config;
    cfg.protected_id = options_.imd_profile.serial;
    cfg.fsk = options_.imd_profile.fsk;
    shield_ = std::make_unique<ShieldNode>(cfg, *medium_, &timeline_->log(),
                                           options_.seed);
    timeline_->add_node(shield_.get());
    // The necklace's antennas face outward, away from the chest: extra
    // attenuation from the shield toward the IMD (calibrated vs Table 1).
    medium_->add_pair_loss(shield_->jam_antenna(), imd_->antenna(),
                           channel::kShieldToImdDirectivityLossDb);
    medium_->add_pair_loss(shield_->rx_antenna(), imd_->antenna(),
                           channel::kShieldToImdDirectivityLossDb);
  }

  if (options_.with_observer) {
    adversary::MonitorConfig mcfg;
    mcfg.name = "observer";
    mcfg.position = channel::kImdPosition;
    mcfg.body_loss_db = options_.imd_profile.body_loss_db;
    mcfg.fsk = options_.imd_profile.fsk;
    observer_ = std::make_unique<adversary::MonitorNode>(mcfg, *medium_);
    timeline_->add_node(observer_.get());
  }

  if (options_.warmup_s > 0.0) timeline_->run_for(options_.warmup_s);
}

}  // namespace hs::shield
