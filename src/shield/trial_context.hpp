/// @file
/// Trial-context pool: reusable deployments and experiment nodes for
/// repeated Monte Carlo trials.
///
/// Standing up a `Deployment` per trial — medium, IMD, shield, channel
/// estimation warm-up — dominates the campaign engine's trials/sec. A
/// `TrialContext` keeps one deployment and one of each auxiliary node
/// (eavesdropper monitor, programmer, active adversary, radiosonde) alive
/// across trials and *reset-and-reseeds* them instead of reconstructing:
/// every piece of state replays exactly as at construction, so a reused
/// context produces bit-identical results to fresh objects (the campaign
/// determinism test asserts this), while skipping the expensive
/// construction work — chiefly the jamming generator's spectral-profile
/// estimation.
///
/// Each campaign worker thread owns one TrialContext (contexts are not
/// thread-safe); the `--no-reuse` escape hatch simply stops passing one.
#pragma once

#include <cstdint>
#include <memory>

#include "adversary/active.hpp"
#include "adversary/cross_traffic.hpp"
#include "adversary/monitor.hpp"
#include "imd/programmer.hpp"
#include "shield/deployment.hpp"
#include "shield/jamgen.hpp"

namespace hs::snapshot {
class SnapshotCache;
}  // namespace hs::snapshot

namespace hs::shield {

/// How a warm-policy context uses its snapshot cache. Both strategies
/// produce bit-identical deployments (the snapshot-identity tests sweep
/// both); they differ only in which recovery path runs when.
enum class WarmStrategy {
  /// Consult the cache only when the deployment must be (re)built; a
  /// pooled deployment whose node set matches is reset — replaying the
  /// warm-up — instead of deserializing a snapshot. The default: since
  /// the SIMD kernels cut warm-up replay below snapshot-restore
  /// deserialization cost, per-trial restores were a net loss (the
  /// BENCH_campaign.json `warm_speedup: 0.972` regression), while
  /// restores still win exactly where they are irreplaceable — first
  /// trials of freshly built contexts (sharded startup, serverd
  /// workers, `--no-reuse`) skipping the cold warm-up simulation.
  kRestoreOnBuild,
  /// Restore from the cache on every trial, matching pooled deployment
  /// or not — the historical policy, kept for A/B timing.
  kRestoreAlways,
};

class TrialContext {
 public:
  TrialContext() = default;
  TrialContext(const TrialContext&) = delete;
  TrialContext& operator=(const TrialContext&) = delete;

  /// Two-phase seeding + warm-state snapshots. A nonzero `warmup_seed` is
  /// stamped into every DeploymentOptions this context builds from (see
  /// DeploymentOptions::warmup_seed), making the post-warm-up state
  /// trial-independent. With a cache, deployment() then restores that
  /// state from a warm snapshot instead of re-simulating the warm-up —
  /// publishing a snapshot on the first cold miss. When a restore runs
  /// is the `strategy` knob (see WarmStrategy). The cache may be
  /// shared across worker threads (it is internally locked) and, through
  /// its directory, across shard processes. Both restored and cold
  /// deployments are bit-identical by construction; the campaign's
  /// snapshot-identity tests enforce it.
  void set_warm_policy(std::uint64_t warmup_seed,
                       snapshot::SnapshotCache* cache,
                       WarmStrategy strategy = WarmStrategy::kRestoreOnBuild);

  /// Returns a deployment in exactly the state `Deployment(options)`
  /// would produce. Reuses (reset + reseeds) the pooled instance when its
  /// node set matches; otherwise rebuilds it. Under a warm policy the
  /// reset is replaced by a snapshot restore on cache hits. Any auxiliary
  /// nodes from the previous trial are forgotten — re-acquire them
  /// after this call, in the same order a fresh experiment would
  /// construct them.
  Deployment& deployment(const DeploymentOptions& options);

  /// Acquire-or-reset the auxiliary node of the given kind, registered
  /// against the current deployment's medium and timeline. Call only
  /// after deployment() in a given trial.
  adversary::MonitorNode& monitor(const adversary::MonitorConfig& config);
  imd::ProgrammerNode& programmer(const imd::ProgrammerConfig& config);
  adversary::ActiveAdversaryNode& active_adversary(
      const adversary::ActiveAdversaryConfig& config);
  adversary::CrossTrafficNode& cross_traffic(
      const adversary::CrossTrafficConfig& config, std::uint64_t seed);

  /// Acquire-or-reset a standalone jamming generator (for trials that
  /// use one outside a deployment, e.g. the multipath-antidote study).
  /// Reuse keeps the generator's cached spectral profile — the
  /// expensive part of its construction — while reset() guarantees the
  /// output stream is bit-identical to a fresh generator's. Unlike the
  /// node accessors this does not touch the deployment.
  JammingSignalGenerator& jamgen(const phy::FskParams& fsk,
                                 JamProfile profile, std::uint64_t seed,
                                 std::size_t fft_size = 256);

  /// Pool effectiveness counters (reported in the campaign perf snapshot).
  std::size_t deployments_built() const { return deployments_built_; }
  std::size_t deployments_reused() const { return deployments_reused_; }
  /// Trials whose warm-up was skipped by a snapshot restore, and cold
  /// warm-ups whose state this context published to the cache.
  std::size_t snapshots_restored() const { return snapshots_restored_; }
  std::size_t snapshots_saved() const { return snapshots_saved_; }

 private:
  /// Cold path: reset-or-rebuild with a full warm-up replay.
  Deployment& cold_deployment(const DeploymentOptions& options);

  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<adversary::MonitorNode> monitor_;
  std::unique_ptr<imd::ProgrammerNode> programmer_;
  std::unique_ptr<adversary::ActiveAdversaryNode> adversary_;
  std::unique_ptr<adversary::CrossTrafficNode> cross_traffic_;
  std::unique_ptr<JammingSignalGenerator> jamgen_;
  std::uint64_t warmup_seed_ = 0;
  snapshot::SnapshotCache* cache_ = nullptr;
  WarmStrategy strategy_ = WarmStrategy::kRestoreOnBuild;
  std::size_t deployments_built_ = 0;
  std::size_t deployments_reused_ = 0;
  std::size_t snapshots_restored_ = 0;
  std::size_t snapshots_saved_ = 0;
};

}  // namespace hs::shield
