// Calibration routines reproducing section 10.1's micro-benchmarks:
//  * antenna-cancellation measurement (Fig. 7),
//  * b_thresh estimation from shield-vs-IMD decode logs (10.1(c)),
//  * P_thresh: the minimum adversarial RSSI at the shield that elicits an
//    IMD response despite jamming (Table 1).
#pragma once

#include <cstdint>
#include <vector>

#include "shield/deployment.hpp"
#include "shield/trial_context.hpp"

namespace hs::shield {

/// One cancellation measurement: the shield jams with the antidote off,
/// then on, and reports the dB drop in received jamming power at its
/// receive antenna (each run re-probes, so the hardware-error draw — and
/// hence the cancellation — varies run to run as in Fig. 7's CDF).
double measure_cancellation_db(Deployment& deployment);

/// Repeated measurement; returns one sample per run.
std::vector<double> measure_cancellation_cdf(Deployment& deployment,
                                             std::size_t runs);

/// Mean power (dBm) left at the shield's receive antenna while it jams
/// with the antidote active — the residual that bounds SINR_shield in
/// equation 9.
double measure_jam_residual_dbm(Deployment& deployment);

struct PthreshResult {
  double min_dbm = 0.0;
  double mean_dbm = 0.0;
  double stddev_db = 0.0;
  std::size_t successes = 0;
  std::vector<double> success_rssi_dbm;  ///< per successful packet
};

/// Sweeps an adversary's transmit power at the given testbed location and
/// records the RSSI (at the shield) of every packet that triggered an IMD
/// response despite active jamming (Table 1's methodology). With a
/// TrialContext the deployment is drawn from the pool (bit-identical,
/// cheaper); without one it is built fresh.
PthreshResult measure_pthresh(std::uint64_t seed, int location_index,
                              double power_lo_dbm, double power_hi_dbm,
                              double power_step_db,
                              std::size_t packets_per_power,
                              TrialContext* context = nullptr);

struct BthreshResult {
  std::size_t packets_sent = 0;
  std::size_t shield_error_imd_ok = 0;  ///< errored at shield, accepted by IMD
  std::size_t max_header_bit_flips = 0;
  std::size_t recommended_bthresh = 4;
};

/// Reproduces the b_thresh calibration of 10.1(c): adversarial packets are
/// sent with the shield only LOGGING (jamming off); offline we count the
/// packets that showed header bit errors at the shield yet still triggered
/// the IMD.
BthreshResult estimate_bthresh(std::uint64_t seed, std::size_t packets);

}  // namespace hs::shield
