#include "shield/experiments.hpp"

#include <cmath>
#include <memory>

#include "adversary/active.hpp"
#include "adversary/cross_traffic.hpp"
#include "adversary/eavesdropper.hpp"
#include "channel/geometry.hpp"
#include "imd/programmer.hpp"
#include "imd/protocol.hpp"

namespace hs::shield {

double EavesdropResult::mean_ber() const {
  if (eavesdropper_ber.empty()) return 0.0;
  double s = 0.0;
  for (double b : eavesdropper_ber) s += b;
  return s / static_cast<double>(eavesdropper_ber.size());
}

EavesdropResult run_eavesdrop_experiment(const EavesdropOptions& options,
                                         TrialContext* context) {
  TrialContext scratch;
  TrialContext& pool = context != nullptr ? *context : scratch;

  DeploymentOptions opt;
  opt.seed = options.seed;
  opt.shield_present = options.shield_present;
  if (options.use_margin_override) {
    opt.shield_config.jam_margin_db = options.jam_margin_db;
  }
  if (options.hardware_error_sigma > 0.0) {
    opt.shield_config.hardware_error_sigma = options.hardware_error_sigma;
  }
  opt.shield_config.jam_profile = options.jam_profile;
  Deployment& d = pool.deployment(opt);

  // The eavesdropper: a capturing monitor at the chosen Fig. 6 location.
  const auto& loc = channel::testbed_location(options.location_index);
  adversary::MonitorConfig ecfg;
  ecfg.name = "eavesdropper";
  ecfg.position = loc.position();
  ecfg.walls = loc.walls;
  ecfg.fsk = opt.imd_profile.fsk;
  ecfg.capture_samples = true;
  // The eavesdropper is decoded offline (eavesdrop_decode with genie
  // timing); its streaming receiver would only burn cycles fighting the
  // jamming it is capturing.
  ecfg.decode_enabled = false;
  adversary::MonitorNode& eavesdropper = pool.monitor(ecfg);

  // Without a shield, a plain programmer triggers the IMD instead.
  imd::ProgrammerNode* programmer = nullptr;
  if (!options.shield_present) {
    imd::ProgrammerConfig pcfg;
    pcfg.fsk = opt.imd_profile.fsk;
    programmer = &pool.programmer(pcfg);
  }
  d.run_for(2e-3);

  EavesdropResult result;
  const auto& serial = opt.imd_profile.serial;
  for (std::size_t p = 0; p < options.packets; ++p) {
    eavesdropper.clear_capture();
    const std::size_t replies_before = d.imd().stats().replies_sent;
    const auto command =
        imd::make_interrogate(serial, static_cast<std::uint8_t>(p));
    if (options.shield_present) {
      d.shield().relay_command(command);
    } else {
      programmer->send(command);
    }
    d.run_for(45e-3);
    if (d.imd().stats().replies_sent == replies_before) continue;
    ++result.imd_packets;

    // Ground truth from the device itself (genie knowledge granted to the
    // eavesdropper only strengthens the adversary).
    const phy::BitVec& truth = d.imd().last_tx_bits();
    const std::size_t tx_start = d.imd().last_tx_start_sample();
    const auto& capture = eavesdropper.capture();
    if (tx_start < eavesdropper.capture_start()) continue;
    const std::size_t offset = tx_start - eavesdropper.capture_start();
    if (offset + truth.size() * opt.imd_profile.fsk.sps > capture.size()) {
      continue;
    }
    const auto decoded =
        options.bandpass_attack
            ? adversary::eavesdrop_decode_bandpass(opt.imd_profile.fsk,
                                                   capture, offset, truth)
            : adversary::eavesdrop_decode(opt.imd_profile.fsk, capture,
                                          offset, truth);
    result.eavesdropper_ber.push_back(decoded.ber);
  }
  if (options.shield_present) {
    result.shield_decoded = d.shield().stats().replies_decoded;
  }
  return result;
}

AttackResult run_attack_experiment(const AttackOptions& options,
                                   TrialContext* context) {
  TrialContext scratch;
  TrialContext& pool = context != nullptr ? *context : scratch;

  DeploymentOptions opt;
  opt.seed = options.seed;
  opt.imd_profile = options.imd_profile;
  opt.shield_present = options.shield_present;
  // Section 10.3 methodology: the shield jams only the adversary's
  // packets (not the IMD's), so the observer can verify IMD responses.
  opt.shield_config.enable_passive_jamming = false;
  Deployment& d = pool.deployment(opt);

  const auto& loc = channel::testbed_location(options.location_index);
  adversary::ActiveAdversaryConfig acfg;
  acfg.position = loc.position();
  acfg.walls = loc.walls;
  acfg.fsk = opt.imd_profile.fsk;
  acfg.tx_power_dbm = -16.0 + options.extra_power_db;
  adversary::ActiveAdversaryNode& adversary = pool.active_adversary(acfg);
  d.run_for(2e-3);

  const auto& serial = opt.imd_profile.serial;
  AttackResult result;
  result.trials = options.trials;
  imd::TherapySettings tampered;  // alternated to always differ
  for (std::size_t t = 0; t < options.trials; ++t) {
    d.medium().rerandomize();
    const auto replies_before = d.imd().stats().replies_sent;
    const auto therapy_before = d.imd().stats().therapy_changes;
    const auto alarms_before =
        options.shield_present ? d.shield().stats().alarms : 0;

    phy::Frame command;
    if (options.kind == AttackKind::kTriggerTransmission) {
      command = imd::make_interrogate(serial, static_cast<std::uint8_t>(t));
    } else {
      tampered.pacing_rate_bpm =
          static_cast<std::uint8_t>(40 + (t % 2) * 100);  // 40 <-> 140 bpm
      command = imd::make_set_therapy(serial, static_cast<std::uint8_t>(t),
                                      tampered);
    }
    adversary.inject(command, d.timeline().sample_position() +
                                  d.options().block_size);
    d.run_for(45e-3);

    const bool success =
        options.kind == AttackKind::kTriggerTransmission
            ? d.imd().stats().replies_sent > replies_before
            : d.imd().stats().therapy_changes > therapy_before;
    if (success) ++result.successes;
    if (options.shield_present &&
        d.shield().stats().alarms > alarms_before) {
      ++result.alarms;
    }
  }
  result.battery_energy_spent_mj = d.imd().battery().tx_energy_spent_mj();
  return result;
}

CoexistenceResult run_coexistence_experiment(
    const CoexistenceOptions& options, TrialContext* context) {
  TrialContext scratch;
  TrialContext& pool = context != nullptr ? *context : scratch;

  CoexistenceResult result;
  for (int loc_index : options.location_indices) {
    DeploymentOptions opt;
    opt.seed = options.seed + static_cast<std::uint64_t>(loc_index);
    Deployment& d = pool.deployment(opt);

    const auto& loc = channel::testbed_location(loc_index);
    adversary::ActiveAdversaryConfig acfg;
    acfg.position = loc.position();
    acfg.walls = loc.walls;
    acfg.fsk = opt.imd_profile.fsk;
    adversary::ActiveAdversaryNode& adversary = pool.active_adversary(acfg);

    adversary::CrossTrafficConfig ccfg;
    ccfg.position = loc.position();
    ccfg.walls = loc.walls;
    adversary::CrossTrafficNode& radiosonde =
        pool.cross_traffic(ccfg, opt.seed);
    d.run_for(2e-3);

    const double fs = opt.imd_profile.fsk.fs;
    const auto command = imd::make_interrogate(opt.imd_profile.serial, 3);
    const std::size_t frame_samples =
        phy::frame_total_bits(0) * opt.imd_profile.fsk.sps;

    for (std::size_t round = 0; round < options.rounds_per_location;
         ++round) {
      // One unauthorized IMD command...
      const std::size_t jams_before = d.shield().stats().active_jams;
      const std::size_t tx_start =
          d.timeline().sample_position() + d.options().block_size;
      adversary.inject(command, tx_start);
      d.run_for(45e-3);
      ++result.imd_commands_sent;
      const bool jammed = d.shield().stats().active_jams > jams_before;
      if (jammed) {
        ++result.imd_commands_jammed;
        // Turn-around: how long after the adversary's last sample the
        // shield kept jamming (the final jam-end event of this round).
        const double tx_end_s =
            static_cast<double>(tx_start + frame_samples) / fs;
        const auto ends = d.log().filter(sim::EventKind::kJamEnd, "shield");
        for (auto it = ends.rbegin(); it != ends.rend(); ++it) {
          if (it->time_s >= tx_end_s) {
            result.turnaround_us.push_back((it->time_s - tx_end_s) * 1e6);
            break;
          }
        }
      }
      // ...then one radiosonde cross-traffic frame.
      const std::size_t jams_before_cross = d.shield().stats().active_jams;
      radiosonde.send_frame(d.timeline().sample_position() +
                            d.options().block_size);
      d.run_for(45e-3);
      ++result.cross_frames_sent;
      if (d.shield().stats().active_jams > jams_before_cross) {
        ++result.cross_frames_jammed;
      }
    }
  }
  return result;
}

}  // namespace hs::shield
