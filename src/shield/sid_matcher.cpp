#include "shield/sid_matcher.hpp"

#include <limits>
#include <stdexcept>

#include "snapshot/state_io.hpp"

namespace hs::shield {

SidMatcher::SidMatcher(phy::BitVec sid, std::size_t bthresh,
                       std::size_t exact_suffix_bits)
    : sid_(std::move(sid)),
      bthresh_(bthresh),
      exact_suffix_bits_(exact_suffix_bits) {
  if (sid_.empty()) throw std::invalid_argument("SidMatcher: empty S_id");
  if (exact_suffix_bits_ > sid_.size()) {
    throw std::invalid_argument("SidMatcher: suffix longer than S_id");
  }
  window_.assign(sid_.size(), 0);
}

bool SidMatcher::push(std::uint8_t bit) {
  window_[head_] = bit & 1;
  head_ = (head_ + 1) % window_.size();
  ++seen_;
  if (fired_ || seen_ < sid_.size()) return false;
  // Compare the ring (oldest bit is at head_) against S_id.
  const std::size_t exact_from = sid_.size() - exact_suffix_bits_;
  std::size_t distance = 0;
  std::size_t idx = head_;
  for (std::size_t i = 0; i < sid_.size(); ++i) {
    const std::size_t diff = (window_[idx] ^ sid_[i]) & 1;
    if (diff != 0 && i >= exact_from) return false;  // suffix must be exact
    distance += diff;
    if (distance > bthresh_) return false;
    idx = (idx + 1) % window_.size();
  }
  fired_ = true;
  return true;
}

bool SidMatcher::push(phy::BitView bits) {
  bool any = false;
  for (std::uint8_t b : bits) any = push(b) || any;
  return any;
}

bool SidMatcher::matches_anywhere(phy::BitView bits) const {
  return best_distance(bits) <= bthresh_;
}

std::size_t SidMatcher::best_distance(phy::BitView bits) const {
  if (bits.size() < sid_.size()) return std::numeric_limits<std::size_t>::max();
  std::size_t best = std::numeric_limits<std::size_t>::max();
  for (std::size_t off = 0; off + sid_.size() <= bits.size(); ++off) {
    std::size_t d = 0;
    for (std::size_t i = 0; i < sid_.size(); ++i) {
      d += (bits[off + i] ^ sid_[i]) & 1;
      if (d >= best) break;
    }
    best = std::min(best, d);
    if (best == 0) break;
  }
  return best;
}

void SidMatcher::reset() {
  fired_ = false;
  seen_ = 0;
  head_ = 0;
}

void SidMatcher::save_state(snapshot::StateWriter& w) const {
  w.begin("sid");
  w.u64("sid_bits", sid_.size());
  w.bytes("window", window_);
  w.u64("head", head_);
  w.u64("seen", seen_);
  w.boolean("fired", fired_);
  w.end("sid");
}

void SidMatcher::load_state(snapshot::StateReader& r) {
  r.begin("sid");
  const std::uint64_t bits = r.u64("sid_bits");
  if (bits != sid_.size()) {
    throw snapshot::SnapshotError("snapshot: S_id length mismatch");
  }
  window_ = r.bytes("window");
  head_ = r.u64("head");
  seen_ = r.u64("seen");
  fired_ = r.boolean("fired");
  if (window_.size() != sid_.size() || head_ >= window_.size()) {
    throw snapshot::SnapshotError("snapshot: S_id window shape invalid");
  }
  r.end("sid");
}

}  // namespace hs::shield
