// The shield: a wearable jammer-cum-receiver that protects an unmodified
// IMD (the paper's core contribution, sections 4-7).
//
// Two antennas, three signal paths:
//   jam antenna ---- shaped random jamming j(t)
//   rx antenna tx chain ---- antidote x(t) = -(H_jam->rec/H_self) j(t),
//       cancelling j(t) at the receive front end only
//   rx antenna rx chain ---- everything on the medium, with the shield's
//       own jamming cancelled, feeding a streaming FSK receiver
//
// Behaviours per block:
//  * PROBING: every probe interval (and before transmitting or jamming if
//    stale) send a two-block probe pair to re-estimate H_jam->rec and
//    H_self (section 5, "channel estimation").
//  * RELAY TX: transmit an authorized command to the IMD from the rx
//    antenna's transmit chain; monitor concurrently with digital
//    self-cancellation and switch to jamming if anything transmits over
//    us (anti-capture, section 7). After our command ends, schedule the
//    passive jam window [end+T1, end+T2+P] for the IMD's reply.
//  * PASSIVE JAM: during a reply window, jam + antidote + decode the
//    IMD's packet from the cancelled stream (section 6).
//  * ACTIVE JAM: when the monitor's partially decoded bits match S_id
//    within b_thresh, jam until the medium goes idle; raise an alarm if
//    the packet's RSSI exceeds P_thresh; if it did, also jam the reply
//    window afterwards in case the command got through (section 7(d)).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "channel/medium.hpp"
#include "dsp/power.hpp"
#include "dsp/rng.hpp"
#include "phy/receiver.hpp"
#include "shield/antidote.hpp"
#include "shield/config.hpp"
#include "shield/jamgen.hpp"
#include "shield/sid_matcher.hpp"
#include "sim/node.hpp"
#include "sim/trace.hpp"
#include "sim/transmit_scheduler.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::shield {

class ShieldNode : public sim::RadioNode {
 public:
  ShieldNode(const ShieldConfig& config, channel::Medium& medium,
             sim::EventLog* log, std::uint64_t seed);

  /// Returns the node to the state a fresh `ShieldNode(config, medium,
  /// log, seed)` would have, re-registering its antennas and pair gains
  /// with `medium` (which the caller has just reset). Reuses the jamming
  /// generator's cached spectral profile when the FSK parameters are
  /// unchanged — the expensive part of construction — so a reset shield
  /// behaves bit-identically to a newly built one at a fraction of the
  /// cost. Part of the campaign engine's trial-context pool.
  void reset(const ShieldConfig& config, channel::Medium& medium,
             sim::EventLog* log, std::uint64_t seed);

  // sim::RadioNode
  void produce(const sim::StepContext& ctx, channel::Medium& medium) override;
  void consume(const sim::StepContext& ctx, channel::Medium& medium) override;
  std::string_view name() const override { return name_; }

  // ---- Relay-facing API -------------------------------------------------
  /// Queues an authorized command for transmission to the IMD.
  void relay_command(const phy::Frame& frame);

  /// CRC-valid IMD frames decoded (through the shield's own jamming).
  std::vector<phy::ReceivedFrame> take_decoded_replies();

  /// True while a queued command has not finished transmitting.
  bool relay_busy() const;

  // ---- Introspection ------------------------------------------------------
  channel::AntennaId rx_antenna() const { return rx_ant_; }
  channel::AntennaId jam_antenna() const { return jam_ant_; }
  const ShieldConfig& config() const { return config_; }
  const ShieldStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  bool jamming() const { return active_jam_ || manual_jam_; }
  bool antidote_ready() const { return antidote_.ready(); }
  double measured_imd_rssi_dbm() const;
  /// Current jamming transmit power (dBm), after margin & FCC clamping.
  double jam_power_dbm() const;

  // ---- Calibration / test hooks (used by section-10.1 benches) -----------
  void set_manual_jam(bool on) { manual_jam_ = on; }
  void set_antidote_enabled(bool on) { antidote_enabled_ = on; }
  void set_active_protection(bool on) { config_.enable_active_protection = on; }
  void set_passive_jamming(bool on) { config_.enable_passive_jamming = on; }
  void set_jam_profile(JamProfile p) { jamgen_.set_profile(p); }
  void set_jam_power_override(std::optional<double> dbm);
  void force_probe() { probe_due_ = true; }
  const AntidoteController& antidote() const { return antidote_; }
  /// Read-only view of the monitor receiver (tests/diagnostics).
  const phy::FskReceiver& monitor() const { return monitor_; }

  /// When enabled, every non-own frame the monitor completes (any decode
  /// status) is retained for offline analysis — the "shield logs all of
  /// the packets" mode of the b_thresh calibration (section 10.1(c)).
  void set_frame_capture(bool on) { capture_frames_ = on; }
  std::vector<phy::ReceivedFrame> take_monitor_frames();

  /// Two-phase seeding, trial half: the shield's own draws (self-cancel
  /// errors), the jamming one-time pad and future antidote epochs move to
  /// per-trial streams. Channel estimates, noise floor, probe schedule —
  /// the post-calibration operating point — are untouched.
  void reseed(std::uint64_t trial_seed);

  /// Warm-state snapshot round trip of the complete node: RNG positions,
  /// jamming generator (incl. its cached spectral profile), antidote
  /// estimates, S_id matcher, monitor receiver stream, modulator phase,
  /// transmit scheduler, probe waveform/schedule, jamming and windowing
  /// state, power estimates, retained frames and stats. Antenna ids are
  /// restored; the medium's registration is restored by Medium::
  /// load_state, so this must not re-register.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  enum class ProbePhase { kNone, kJamAntenna, kSelfLoop };

  /// Adds the two antennas and their hardware-coupling pair gains to the
  /// medium (shared by the constructor and reset()).
  void register_with_medium(channel::Medium& medium);

  void start_active_jam(const sim::StepContext& ctx, double trigger_rssi,
                        bool from_own_tx);
  void stop_active_jam(const sim::StepContext& ctx);
  void schedule_reply_window(std::size_t signal_end_sample);
  bool in_passive_window(std::size_t block_start,
                         std::size_t block_end) const;
  void prune_windows(std::size_t before_sample);
  double idle_threshold() const;
  double self_residual_threshold() const;
  void emit_jam(const sim::StepContext& ctx, channel::Medium& medium);
  void handle_monitor_frames(const sim::StepContext& ctx);
  void check_sid_mid_packet(const sim::StepContext& ctx, double block_power);
  static bool f_is_reply_window_failure(const phy::ReceivedFrame& frame);

  ShieldConfig config_;
  std::string name_ = "shield";
  channel::AntennaId jam_ant_;
  channel::AntennaId rx_ant_;
  sim::EventLog* log_;
  dsp::Rng rng_;

  JammingSignalGenerator jamgen_;
  AntidoteController antidote_;
  SidMatcher sid_;
  phy::FskReceiver monitor_;
  phy::FskModulator modulator_;
  sim::TransmitScheduler tx_;

  // Probing.
  ProbePhase probe_phase_ = ProbePhase::kNone;
  dsp::Samples probe_waveform_;
  double probe_amplitude_;
  bool probe_due_ = true;
  double last_probe_s_ = -1.0;

  // Jamming state.
  bool active_jam_ = false;
  bool manual_jam_ = false;
  bool antidote_enabled_ = true;
  bool jammed_this_block_ = false;
  dsp::SoaSamples jam_block_;      ///< split-complex jam stream slice
  dsp::SoaSamples antidote_block_; ///< scratch: coeff * jam_block_
  dsp::SoaSamples work_;           ///< scratch: rx minus own-tx cancellation
  std::size_t active_jam_started_block_ = 0;
  std::size_t quiet_blocks_ = 0;
  bool high_power_suspect_ = false;
  std::vector<std::pair<std::size_t, std::size_t>> passive_windows_;

  // Own transmissions.
  std::vector<phy::Frame> pending_;  ///< relay commands awaiting release
  std::deque<std::pair<std::size_t, std::size_t>> own_tx_ranges_;
  dsp::Samples own_tx_block_;
  bool transmitted_this_block_ = false;
  dsp::cplx self_cancel_error_{0.0, 0.0};

  // Monitoring state.
  double noise_floor_mw_;
  double last_block_power_ = 0.0;  ///< most recent un-jammed block power
  double imd_rssi_mw_ = 0.0;  ///< EWMA of decoded IMD frame power
  std::optional<double> jam_power_override_dbm_;
  std::size_t sid_checked_bits_ = 0;
  std::size_t current_lock_start_ = 0;
  double current_lock_peak_power_ = 0.0;

  std::vector<phy::ReceivedFrame> decoded_replies_;
  bool capture_frames_ = false;
  std::vector<phy::ReceivedFrame> captured_frames_;
  ShieldStats stats_;
};

}  // namespace hs::shield
