// Antidote computation (paper section 5, equations 1-2).
//
// The shield's receive antenna is connected to both a transmit and a
// receive chain. While the jamming antenna transmits j(t), the transmit
// chain sends the antidote x(t) = -(H_jam->rec / H_self) j(t), cancelling
// the jamming signal at the receive antenna's front end — and, because
// |H_jam->rec / H_self| << 1 (about -27 dB on the paper's USRP2), at no
// other point in space (equations 3-5).
//
// The controller owns the channel estimates (refreshed from probes sent
// every probe interval, or immediately before transmitting/jamming) and
// models the analog imperfection that bounds real cancellation: the
// antidote leaves the DAC/mixer with a small multiplicative error
// (1 + eps), eps ~ CN(0, sigma^2), redrawn per estimation epoch. With
// sigma = 2.5% this yields the ~32 dB mean cancellation of Fig. 7.
#pragma once

#include <cstdint>
#include <optional>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::shield {

class AntidoteController {
 public:
  AntidoteController(double hardware_error_sigma, std::uint64_t seed);

  /// Stores a fresh estimate of the jamming-antenna -> receive-antenna
  /// channel (from a probe on the jamming antenna).
  void update_jam_channel(dsp::cplx h);

  /// Stores a fresh estimate of the self-loop channel (from a probe on the
  /// receive antenna's transmit chain).
  void update_self_channel(dsp::cplx h);

  /// Starts a new analog epoch: redraws the hardware error. Called when a
  /// probe pair completes.
  void begin_epoch();

  /// Both channels estimated at least once.
  bool ready() const { return h_jam_to_rec_ && h_self_; }

  /// The coefficient applied to the jamming samples to produce the
  /// antidote actually leaving the transmit chain:
  ///   x(t) = coeff * j(t),  coeff = -(H_jam->rec / H_self) * (1 + eps).
  dsp::cplx antidote_coefficient() const;

  /// The ideal (error-free) coefficient; tests use it as ground truth.
  dsp::cplx ideal_coefficient() const;

  dsp::cplx jam_channel() const;
  dsp::cplx self_channel() const;

  /// Resets to the never-probed state.
  void reset();

  /// Two-phase seeding, trial half: future epoch draws come from the
  /// per-trial stream, while the channel estimates and the current
  /// hardware-error draw — the post-calibration operating point — are
  /// kept.
  void reseed(std::uint64_t trial_seed);

  /// Warm-state snapshot round trip: channel estimates, the live
  /// hardware-error draw and the RNG stream position.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  double sigma_;
  dsp::Rng rng_;
  std::optional<dsp::cplx> h_jam_to_rec_;
  std::optional<dsp::cplx> h_self_;
  dsp::cplx hardware_error_{0.0, 0.0};
};

/// Generates the deterministic unit-power PN probe waveform used for
/// channel estimation (known to the shield, so a least-squares estimate of
/// the flat channel falls out of one correlation).
dsp::Samples make_probe_waveform(std::size_t length, std::uint64_t seed);

}  // namespace hs::shield
