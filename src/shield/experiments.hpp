/// @file
/// Reusable experiment drivers for the paper's evaluation section.
/// Each function stands up a full Fig. 6-style deployment, runs the
/// scripted scenario, and returns raw measurements; the bench binaries
/// format them into the paper's tables and figures, and the integration
/// tests assert on them.
///
/// Every driver accepts an optional TrialContext. With one, the
/// deployment and experiment nodes are drawn from the pool (reset and
/// reseeded rather than reconstructed) — bit-identical results, a
/// fraction of the setup cost. Without one, a private context is used
/// and discarded, which is plain fresh construction.
#pragma once

#include <cstdint>
#include <vector>

#include "imd/profiles.hpp"
#include "shield/deployment.hpp"
#include "shield/jamgen.hpp"
#include "shield/trial_context.hpp"

namespace hs::shield {

// ---------------------------------------------------------------------------
// Passive-adversary experiment (sections 10.2, Figs. 8-10): the shield
// repeatedly triggers the IMD to transmit while jamming; an eavesdropper at
// a testbed location records and decodes with the optimal FSK decoder.
// ---------------------------------------------------------------------------

struct EavesdropOptions {
  std::uint64_t seed = 1;
  int location_index = 1;
  std::size_t packets = 100;
  /// If set, overrides the jamming power to measured-IMD-RSSI + this
  /// margin (Fig. 8's x-axis). Negative margins allowed. NaN => default.
  double jam_margin_db = 20.0;
  bool use_margin_override = false;
  JamProfile jam_profile = JamProfile::kShaped;
  /// Decode with the two-tone band-pass-filter attack instead of the
  /// plain optimal decoder (shaping ablation).
  bool bandpass_attack = false;
  bool shield_present = true;
  /// Antidote analog accuracy (the SINR-gap ablation sweeps this);
  /// <= 0 keeps the shield default.
  double hardware_error_sigma = 0.0;
};

struct EavesdropResult {
  std::vector<double> eavesdropper_ber;  ///< per decoded packet
  std::size_t imd_packets = 0;           ///< packets the IMD transmitted
  std::size_t shield_decoded = 0;        ///< decoded through jamming
  double shield_packet_loss() const {
    return imd_packets == 0
               ? 0.0
               : 1.0 - static_cast<double>(shield_decoded) /
                           static_cast<double>(imd_packets);
  }
  double mean_ber() const;
};

EavesdropResult run_eavesdrop_experiment(const EavesdropOptions& options,
                                         TrialContext* context = nullptr);

// ---------------------------------------------------------------------------
// Active-adversary experiment (section 10.3, Figs. 11-13): an adversary at
// a testbed location sends unauthorized commands, with and without the
// shield; an in-body observer checks whether the IMD responded.
// ---------------------------------------------------------------------------

enum class AttackKind {
  kTriggerTransmission,  ///< battery-depletion interrogation (Fig. 11)
  kChangeTherapy,        ///< therapy modification (Fig. 12)
};

struct AttackOptions {
  std::uint64_t seed = 1;
  /// Which IMD model is under attack (Virtuoso or Concerto).
  imd::ImdProfile imd_profile = imd::virtuoso_profile();
  int location_index = 1;
  std::size_t trials = 100;
  bool shield_present = true;
  /// dB above the FCC limit (the 100x adversary of Fig. 13 uses +20).
  double extra_power_db = 0.0;
  AttackKind kind = AttackKind::kTriggerTransmission;
};

struct AttackResult {
  std::size_t trials = 0;
  std::size_t successes = 0;
  std::size_t alarms = 0;
  double success_probability() const {
    return trials ? static_cast<double>(successes) /
                        static_cast<double>(trials)
                  : 0.0;
  }
  double alarm_probability() const {
    return trials ? static_cast<double>(alarms) / static_cast<double>(trials)
                  : 0.0;
  }
  /// Battery energy the IMD spent transmitting during the attack (mJ).
  double battery_energy_spent_mj = 0.0;
};

AttackResult run_attack_experiment(const AttackOptions& options,
                                   TrialContext* context = nullptr);

// ---------------------------------------------------------------------------
// Coexistence experiment (section 11, Table 2): a USRP alternates between
// unauthorized IMD commands and radiosonde GMSK cross-traffic; the shield
// must jam all of the former and none of the latter. Also measures the
// shield's turn-around time after the adversary stops transmitting.
// ---------------------------------------------------------------------------

struct CoexistenceOptions {
  std::uint64_t seed = 1;
  std::vector<int> location_indices = {1, 3, 5, 7, 9};
  std::size_t rounds_per_location = 10;  ///< one command + one cross frame
};

struct CoexistenceResult {
  std::size_t imd_commands_sent = 0;
  std::size_t imd_commands_jammed = 0;
  std::size_t cross_frames_sent = 0;
  std::size_t cross_frames_jammed = 0;
  std::vector<double> turnaround_us;  ///< jam-stop latency per jam
};

CoexistenceResult run_coexistence_experiment(const CoexistenceOptions& options,
                                             TrialContext* context = nullptr);

}  // namespace hs::shield
