#include "shield/multitap_antidote.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "snapshot/state_io.hpp"

namespace hs::shield {

using dsp::cplx;
using dsp::Samples;

Samples estimate_fir_channel(dsp::SampleView received,
                             dsp::SampleView probe, std::size_t taps) {
  if (taps == 0) throw std::invalid_argument("estimate_fir_channel: taps=0");
  const std::size_t n = std::min(received.size(), probe.size());
  if (n < 2 * taps) {
    throw std::invalid_argument("estimate_fir_channel: probe too short");
  }
  // Normal equations A h = b with A = X^H X, b = X^H y, where row n of X
  // is [x[n], x[n-1], ..., x[n-taps+1]].
  std::vector<std::vector<cplx>> a(taps, std::vector<cplx>(taps, cplx{}));
  std::vector<cplx> b(taps, cplx{});
  for (std::size_t row = taps - 1; row < n; ++row) {
    for (std::size_t k = 0; k < taps; ++k) {
      const cplx xk = std::conj(probe[row - k]);
      b[k] += xk * received[row];
      for (std::size_t l = 0; l < taps; ++l) {
        a[k][l] += xk * probe[row - l];
      }
    }
  }
  // Gaussian elimination with partial pivoting (taps is tiny).
  for (std::size_t col = 0; col < taps; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < taps; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const cplx diag = a[col][col];
    if (std::abs(diag) < 1e-30) continue;  // degenerate direction
    for (std::size_t r = 0; r < taps; ++r) {
      if (r == col) continue;
      const cplx factor = a[r][col] / diag;
      for (std::size_t c = col; c < taps; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  Samples h(taps);
  for (std::size_t k = 0; k < taps; ++k) {
    h[k] = std::abs(a[k][k]) > 1e-30 ? b[k] / a[k][k] : cplx{};
  }
  return h;
}

MultitapAntidote::MultitapAntidote(std::size_t fir_taps,
                                   std::size_t equalizer_taps)
    : fir_taps_(fir_taps), eq_taps_(equalizer_taps) {
  if (!dsp::is_pow2(eq_taps_)) {
    throw std::invalid_argument("MultitapAntidote: equalizer_taps not 2^k");
  }
}

void MultitapAntidote::update_jam_channel(dsp::SampleView received,
                                          dsp::SampleView probe) {
  h_jam_ = estimate_fir_channel(received, probe, fir_taps_);
  have_jam_ = true;
  if (ready()) design_equalizer();
}

void MultitapAntidote::update_self_channel(dsp::SampleView received,
                                           dsp::SampleView probe) {
  h_self_ = estimate_fir_channel(received, probe, fir_taps_);
  have_self_ = true;
  if (ready()) design_equalizer();
}

void MultitapAntidote::design_equalizer() {
  // Frequency sampling: EQ(f) = -Hjr(f) / Hself(f) over eq_taps_ bins.
  Samples jam_f(eq_taps_, cplx{});
  Samples self_f(eq_taps_, cplx{});
  for (std::size_t k = 0; k < h_jam_.size(); ++k) jam_f[k] = h_jam_[k];
  for (std::size_t k = 0; k < h_self_.size(); ++k) self_f[k] = h_self_[k];
  dsp::fft_inplace(jam_f);
  dsp::fft_inplace(self_f);
  Samples eq_f(eq_taps_);
  // Tikhonov-style regularization keeps deep self-channel notches from
  // exploding the equalizer.
  double self_peak = 0.0;
  for (const auto& s : self_f) self_peak = std::max(self_peak, std::norm(s));
  const double reg = 1e-6 * self_peak;
  for (std::size_t k = 0; k < eq_taps_; ++k) {
    eq_f[k] = -jam_f[k] * std::conj(self_f[k]) /
              (std::norm(self_f[k]) + reg);
  }
  dsp::ifft_inplace(eq_f);
  eq_ = std::move(eq_f);
  filter_.emplace(eq_);
}

void MultitapAntidote::reset_stream() {
  if (filter_) filter_->reset();
}

Samples MultitapAntidote::antidote_for(dsp::SampleView jamming) {
  if (!ready()) throw std::logic_error("MultitapAntidote: not estimated");
  return filter_->process(jamming);
}

void MultitapAntidote::antidote_for(dsp::SoaView jamming,
                                    dsp::SoaSamples& out) {
  if (!ready()) throw std::logic_error("MultitapAntidote: not estimated");
  out.clear();
  out.reserve(jamming.size());
  filter_->process(jamming, out);
}


void MultitapAntidote::save_state(snapshot::StateWriter& w) const {
  w.begin("multitap");
  w.u64("fir_taps", fir_taps_);
  w.u64("eq_taps", eq_taps_);
  w.boolean("have_jam", have_jam_);
  w.boolean("have_self", have_self_);
  w.samples("h_jam", h_jam_);
  w.samples("h_self", h_self_);
  w.samples("eq", eq_);
  w.boolean("have_filter", filter_.has_value());
  if (filter_) filter_->save_state(w);
  w.end("multitap");
}

void MultitapAntidote::load_state(snapshot::StateReader& r) {
  r.begin("multitap");
  if (r.u64("fir_taps") != fir_taps_ || r.u64("eq_taps") != eq_taps_) {
    throw snapshot::SnapshotError("snapshot: multitap geometry mismatch");
  }
  have_jam_ = r.boolean("have_jam");
  have_self_ = r.boolean("have_self");
  h_jam_ = r.samples("h_jam");
  h_self_ = r.samples("h_self");
  eq_ = r.samples("eq");
  if (r.boolean("have_filter")) {
    filter_.emplace(eq_);
    filter_->load_state(r);
  } else {
    filter_.reset();
  }
  r.end("multitap");
}

double MultitapAntidote::predicted_cancellation_db() const {
  if (!ready() || eq_.empty()) return 0.0;
  // Residual transfer = Hjr(f) + Hself(f) * EQ(f), evaluated on the
  // equalizer's own frequency grid.
  Samples jam_f(eq_taps_, cplx{});
  Samples self_f(eq_taps_, cplx{});
  for (std::size_t k = 0; k < h_jam_.size(); ++k) jam_f[k] = h_jam_[k];
  for (std::size_t k = 0; k < h_self_.size(); ++k) self_f[k] = h_self_[k];
  dsp::fft_inplace(jam_f);
  dsp::fft_inplace(self_f);
  Samples eq_f(eq_.begin(), eq_.end());
  dsp::fft_inplace(eq_f);
  double jam_power = 0.0, residual_power = 0.0;
  for (std::size_t k = 0; k < eq_taps_; ++k) {
    jam_power += std::norm(jam_f[k]);
    residual_power += std::norm(jam_f[k] + self_f[k] * eq_f[k]);
  }
  if (residual_power <= 0.0) return 120.0;
  return 10.0 * std::log10(jam_power / residual_power);
}

}  // namespace hs::shield
