// Authorized programmer <-> shield proxying over an authenticated,
// encrypted channel (paper section 4, Fig. 1).
//
// The paper assumes this channel exists (established in-band [19] or
// out-of-band [28]) but does not design it; we realize it with the
// crypto substrate: HKDF-derived directional keys from a pre-shared
// pairing secret, ChaCha20-Poly1305 per message, sequence-number nonces
// with replay protection. Transport is an in-memory out-of-band link —
// the relevant property for the paper's security argument is that only
// endpoints holding the pairing secret can produce envelopes the shield
// accepts, which the tests exercise directly.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "crypto/secure_channel.hpp"
#include "imd/protocol.hpp"
#include "phy/frame.hpp"
#include "shield/shield.hpp"

namespace hs::shield {

/// Wire messages: a serialized frame (type + seq + payload), encrypted.
phy::ByteVec serialize_relay_frame(const phy::Frame& frame);
std::optional<phy::Frame> deserialize_relay_frame(phy::ByteView bytes,
                                                  const phy::DeviceId& id);

/// Bidirectional in-memory transport carrying sealed envelopes.
struct OutOfBandLink {
  std::deque<crypto::SecureChannel::Envelope> to_shield;
  std::deque<crypto::SecureChannel::Envelope> to_programmer;
};

/// Shield-side relay service: decrypts incoming authorized commands and
/// hands them to the ShieldNode; encrypts decoded IMD replies back.
class RelayService {
 public:
  RelayService(ShieldNode& shield, OutOfBandLink& link, crypto::ByteView psk,
               std::uint64_t session_id);

  /// Pumps both directions once (call once per simulation block or less).
  void poll();

  std::size_t rejected_envelopes() const { return rejected_; }

 private:
  ShieldNode& shield_;
  OutOfBandLink& link_;
  crypto::SecureChannel channel_;
  std::size_t rejected_ = 0;
};

/// Programmer-side endpoint: encrypts commands toward the shield and
/// decrypts relayed IMD replies.
class AuthorizedProgrammer {
 public:
  AuthorizedProgrammer(OutOfBandLink& link, crypto::ByteView psk,
                       std::uint64_t session_id);

  /// Sends a command for the shield to forward to the IMD.
  void send_command(const phy::Frame& frame);

  /// Drains and decrypts any relayed IMD replies.
  std::vector<phy::Frame> poll_replies(const phy::DeviceId& id);

  std::size_t rejected_envelopes() const { return rejected_; }

 private:
  OutOfBandLink& link_;
  crypto::SecureChannel channel_;
  std::size_t rejected_ = 0;
};

}  // namespace hs::shield
