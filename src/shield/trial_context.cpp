#include "shield/trial_context.hpp"

namespace hs::shield {

Deployment& TrialContext::deployment(const DeploymentOptions& options) {
  if (deployment_ != nullptr && deployment_->can_reset_to(options)) {
    deployment_->reset(options);
    ++deployments_reused_;
  } else {
    deployment_ = std::make_unique<Deployment>(options);
    ++deployments_built_;
  }
  return *deployment_;
}

adversary::MonitorNode& TrialContext::monitor(
    const adversary::MonitorConfig& config) {
  if (monitor_ == nullptr) {
    monitor_ =
        std::make_unique<adversary::MonitorNode>(config, deployment_->medium());
  } else {
    monitor_->reset(config, deployment_->medium());
  }
  deployment_->add_node(monitor_.get());
  return *monitor_;
}

imd::ProgrammerNode& TrialContext::programmer(
    const imd::ProgrammerConfig& config) {
  if (programmer_ == nullptr) {
    programmer_ = std::make_unique<imd::ProgrammerNode>(
        config, deployment_->medium(), &deployment_->log());
  } else {
    programmer_->reset(config, deployment_->medium(), &deployment_->log());
  }
  deployment_->add_node(programmer_.get());
  return *programmer_;
}

adversary::ActiveAdversaryNode& TrialContext::active_adversary(
    const adversary::ActiveAdversaryConfig& config) {
  if (adversary_ == nullptr) {
    adversary_ = std::make_unique<adversary::ActiveAdversaryNode>(
        config, deployment_->medium(), &deployment_->log());
  } else {
    adversary_->reset(config, deployment_->medium(), &deployment_->log());
  }
  deployment_->add_node(adversary_.get());
  return *adversary_;
}

JammingSignalGenerator& TrialContext::jamgen(const phy::FskParams& fsk,
                                             JamProfile profile,
                                             std::uint64_t seed,
                                             std::size_t fft_size) {
  if (jamgen_ == nullptr) {
    jamgen_ =
        std::make_unique<JammingSignalGenerator>(fsk, profile, seed, fft_size);
  } else {
    jamgen_->reset(fsk, profile, seed, fft_size);
  }
  return *jamgen_;
}

adversary::CrossTrafficNode& TrialContext::cross_traffic(
    const adversary::CrossTrafficConfig& config, std::uint64_t seed) {
  if (cross_traffic_ == nullptr) {
    cross_traffic_ = std::make_unique<adversary::CrossTrafficNode>(
        config, deployment_->medium(), seed);
  } else {
    cross_traffic_->reset(config, deployment_->medium(), seed);
  }
  deployment_->add_node(cross_traffic_.get());
  return *cross_traffic_;
}

}  // namespace hs::shield
