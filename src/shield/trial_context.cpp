#include "shield/trial_context.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "snapshot/snapshot_cache.hpp"

namespace hs::shield {

void TrialContext::set_warm_policy(std::uint64_t warmup_seed,
                                   snapshot::SnapshotCache* cache,
                                   WarmStrategy strategy) {
  warmup_seed_ = warmup_seed;
  cache_ = warmup_seed != 0 ? cache : nullptr;
  strategy_ = strategy;
}

Deployment& TrialContext::cold_deployment(const DeploymentOptions& options) {
  if (deployment_ != nullptr && deployment_->can_reset_to(options)) {
    deployment_->reset(options);
    ++deployments_reused_;
    obs::count(obs::Counter::kDeploymentsReused);
  } else {
    deployment_ = std::make_unique<Deployment>(options);
    ++deployments_built_;
    obs::count(obs::Counter::kDeploymentsBuilt);
  }
  return *deployment_;
}

Deployment& TrialContext::deployment(const DeploymentOptions& options) {
  DeploymentOptions opts = options;
  if (warmup_seed_ != 0) opts.warmup_seed = warmup_seed_;
  if (cache_ == nullptr) return cold_deployment(opts);
  if (strategy_ == WarmStrategy::kRestoreOnBuild && deployment_ != nullptr &&
      deployment_->can_reset_to(opts)) {
    // Replaying the warm-up through reset is cheaper than deserializing
    // a snapshot (and bit-identical); the cache matters only when the
    // deployment below must be (re)built.
    return cold_deployment(opts);
  }

  const std::string key = deployment_warm_key(opts);
  std::shared_ptr<const snapshot::StateDoc> doc = cache_->find(key);
  if (doc == nullptr) {
    // First trial for this configuration anywhere: warm up cold, then
    // publish so every later trial — this worker's, its siblings', other
    // shard processes' — restores instead of re-simulating the warm-up.
    Deployment& d = cold_deployment(opts);
    {
      obs::ScopedTimer timer(obs::Phase::kSnapshotSave);
      obs::TraceSpan span("snapshot", "snapshot_save");
      cache_->store(key, d.save_warm());
    }
    ++snapshots_saved_;
    obs::count(obs::Counter::kSnapshotsSaved);
    return d;
  }
  try {
    {
      obs::ScopedTimer timer(obs::Phase::kSnapshotRestore);
      obs::TraceSpan span("snapshot", "snapshot_restore");
      if (deployment_ != nullptr && deployment_->can_reset_to(opts)) {
        deployment_->restore_warm(*doc, opts);
        ++deployments_reused_;
        obs::count(obs::Counter::kDeploymentsReused);
      } else {
        deployment_ = std::make_unique<Deployment>(*doc, opts);
        ++deployments_built_;
        obs::count(obs::Counter::kDeploymentsBuilt);
      }
    }
    ++snapshots_restored_;
    obs::count(obs::Counter::kSnapshotsRestored);
    return *deployment_;
  } catch (const snapshot::SnapshotError& e) {
    // A restore must never half-apply: discard the touched deployment and
    // fall back to a cold warm-up (bit-identical, just slower).
    deployment_.reset();
    std::fprintf(stderr,
                 "snapshot: restore failed (%s); falling back to cold "
                 "warm-up\n",
                 e.what());
    return cold_deployment(opts);
  }
}

adversary::MonitorNode& TrialContext::monitor(
    const adversary::MonitorConfig& config) {
  if (monitor_ == nullptr) {
    monitor_ =
        std::make_unique<adversary::MonitorNode>(config, deployment_->medium());
  } else {
    monitor_->reset(config, deployment_->medium());
  }
  deployment_->add_node(monitor_.get());
  return *monitor_;
}

imd::ProgrammerNode& TrialContext::programmer(
    const imd::ProgrammerConfig& config) {
  if (programmer_ == nullptr) {
    programmer_ = std::make_unique<imd::ProgrammerNode>(
        config, deployment_->medium(), &deployment_->log());
  } else {
    programmer_->reset(config, deployment_->medium(), &deployment_->log());
  }
  deployment_->add_node(programmer_.get());
  return *programmer_;
}

adversary::ActiveAdversaryNode& TrialContext::active_adversary(
    const adversary::ActiveAdversaryConfig& config) {
  if (adversary_ == nullptr) {
    adversary_ = std::make_unique<adversary::ActiveAdversaryNode>(
        config, deployment_->medium(), &deployment_->log());
  } else {
    adversary_->reset(config, deployment_->medium(), &deployment_->log());
  }
  deployment_->add_node(adversary_.get());
  return *adversary_;
}

JammingSignalGenerator& TrialContext::jamgen(const phy::FskParams& fsk,
                                             JamProfile profile,
                                             std::uint64_t seed,
                                             std::size_t fft_size) {
  if (jamgen_ == nullptr) {
    jamgen_ =
        std::make_unique<JammingSignalGenerator>(fsk, profile, seed, fft_size);
  } else {
    jamgen_->reset(fsk, profile, seed, fft_size);
  }
  return *jamgen_;
}

adversary::CrossTrafficNode& TrialContext::cross_traffic(
    const adversary::CrossTrafficConfig& config, std::uint64_t seed) {
  if (cross_traffic_ == nullptr) {
    cross_traffic_ = std::make_unique<adversary::CrossTrafficNode>(
        config, deployment_->medium(), seed);
  } else {
    cross_traffic_->reset(config, deployment_->medium(), seed);
  }
  deployment_->add_node(cross_traffic_.get());
  return *cross_traffic_;
}

}  // namespace hs::shield
