#include "shield/relay.hpp"

namespace hs::shield {

phy::ByteVec serialize_relay_frame(const phy::Frame& frame) {
  phy::ByteVec out;
  out.push_back(frame.type);
  out.push_back(frame.seq);
  out.push_back(static_cast<std::uint8_t>(frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

std::optional<phy::Frame> deserialize_relay_frame(phy::ByteView bytes,
                                                  const phy::DeviceId& id) {
  if (bytes.size() < 3) return std::nullopt;
  phy::Frame frame;
  frame.device_id = id;
  frame.type = bytes[0];
  frame.seq = bytes[1];
  const std::size_t len = bytes[2];
  if (bytes.size() != 3 + len || len > phy::kMaxPayloadBytes) {
    return std::nullopt;
  }
  frame.payload.assign(bytes.begin() + 3, bytes.end());
  return frame;
}

RelayService::RelayService(ShieldNode& shield, OutOfBandLink& link,
                           crypto::ByteView psk, std::uint64_t session_id)
    : shield_(shield),
      link_(link),
      channel_(crypto::ChannelRole::kShield, psk, session_id) {}

void RelayService::poll() {
  // Inbound: authorized commands toward the IMD.
  while (!link_.to_shield.empty()) {
    const auto envelope = link_.to_shield.front();
    link_.to_shield.pop_front();
    auto plain = channel_.receive(envelope);
    if (!plain) {
      ++rejected_;
      continue;
    }
    auto frame = deserialize_relay_frame(
        crypto::ByteView(plain->data(), plain->size()),
        shield_.config().protected_id);
    if (!frame) {
      ++rejected_;
      continue;
    }
    shield_.relay_command(*frame);
  }
  // Outbound: decoded IMD replies back to the programmer.
  for (auto& reply : shield_.take_decoded_replies()) {
    const auto bytes = serialize_relay_frame(reply.decode.frame);
    link_.to_programmer.push_back(
        channel_.send(crypto::ByteView(bytes.data(), bytes.size())));
  }
}

AuthorizedProgrammer::AuthorizedProgrammer(OutOfBandLink& link,
                                           crypto::ByteView psk,
                                           std::uint64_t session_id)
    : link_(link),
      channel_(crypto::ChannelRole::kProgrammer, psk, session_id) {}

void AuthorizedProgrammer::send_command(const phy::Frame& frame) {
  const auto bytes = serialize_relay_frame(frame);
  link_.to_shield.push_back(
      channel_.send(crypto::ByteView(bytes.data(), bytes.size())));
}

std::vector<phy::Frame> AuthorizedProgrammer::poll_replies(
    const phy::DeviceId& id) {
  std::vector<phy::Frame> out;
  while (!link_.to_programmer.empty()) {
    const auto envelope = link_.to_programmer.front();
    link_.to_programmer.pop_front();
    auto plain = channel_.receive(envelope);
    if (!plain) {
      ++rejected_;
      continue;
    }
    auto frame = deserialize_relay_frame(
        crypto::ByteView(plain->data(), plain->size()), id);
    if (!frame) {
      ++rejected_;
      continue;
    }
    out.push_back(std::move(*frame));
  }
  return out;
}

}  // namespace hs::shield
