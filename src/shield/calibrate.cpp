#include "shield/calibrate.hpp"

#include <algorithm>
#include <cmath>

#include "adversary/active.hpp"
#include "channel/geometry.hpp"
#include "dsp/units.hpp"
#include "imd/protocol.hpp"

namespace hs::shield {
namespace {

/// Mean received power at an antenna over `blocks` timeline blocks.
double mean_rx_power(Deployment& d, channel::AntennaId antenna,
                     std::size_t blocks) {
  double acc = 0.0;
  for (std::size_t i = 0; i < blocks; ++i) {
    d.timeline().step();
    acc += d.medium().rx_power(antenna);
  }
  return acc / static_cast<double>(blocks);
}

}  // namespace

double measure_cancellation_db(Deployment& d) {
  ShieldNode& shield = d.shield();
  // Fresh probe -> fresh channel estimates and a fresh hardware-error
  // epoch, exactly like re-running the experiment.
  shield.force_probe();
  d.run_for(2e-3);

  constexpr std::size_t kBlocks = 64;  // ~100 kb at 48 samples/block
  shield.set_antidote_enabled(false);
  shield.set_manual_jam(true);
  const double p_without = mean_rx_power(d, shield.rx_antenna(), kBlocks);
  shield.set_antidote_enabled(true);
  const double p_with = mean_rx_power(d, shield.rx_antenna(), kBlocks);
  shield.set_manual_jam(false);
  d.run_for(1e-3);
  return dsp::power_to_db(p_without / std::max(p_with, 1e-30));
}

std::vector<double> measure_cancellation_cdf(Deployment& d,
                                             std::size_t runs) {
  std::vector<double> out;
  out.reserve(runs);
  for (std::size_t i = 0; i < runs; ++i) {
    out.push_back(measure_cancellation_db(d));
  }
  std::sort(out.begin(), out.end());
  return out;
}

double measure_jam_residual_dbm(Deployment& d) {
  ShieldNode& shield = d.shield();
  shield.force_probe();
  d.run_for(2e-3);
  shield.set_antidote_enabled(true);
  shield.set_manual_jam(true);
  const double p = mean_rx_power(d, shield.rx_antenna(), 64);
  shield.set_manual_jam(false);
  d.run_for(1e-3);
  return dsp::mw_to_dbm(std::max(p, 1e-30));
}

PthreshResult measure_pthresh(std::uint64_t seed, int location_index,
                              double power_lo_dbm, double power_hi_dbm,
                              double power_step_db,
                              std::size_t packets_per_power,
                              TrialContext* context) {
  TrialContext scratch;
  TrialContext& pool = context != nullptr ? *context : scratch;

  DeploymentOptions opt;
  opt.seed = seed;
  opt.with_observer = true;
  // Per section 10.3's methodology the shield jams only the adversary's
  // packets, not the IMD's replies, so the observer can hear them.
  opt.shield_config.enable_passive_jamming = false;
  Deployment& d = pool.deployment(opt);

  const auto& loc = channel::testbed_location(location_index);
  adversary::ActiveAdversaryConfig acfg;
  acfg.position = loc.position();
  acfg.walls = loc.walls;
  acfg.fsk = opt.imd_profile.fsk;
  adversary::ActiveAdversaryNode& adversary = pool.active_adversary(acfg);
  d.run_for(2e-3);

  // The adversary transmits an interrogation (elicits a reply).
  const auto command = imd::make_interrogate(opt.imd_profile.serial, 1);

  PthreshResult result;
  double sum = 0.0, sum_sq = 0.0;
  for (double p = power_lo_dbm; p <= power_hi_dbm + 1e-9;
       p += power_step_db) {
    adversary.set_tx_power_dbm(p);
    for (std::size_t i = 0; i < packets_per_power; ++i) {
      d.medium().rerandomize();
      const std::size_t before = d.observer()->frames().size();
      adversary.inject(command, d.timeline().sample_position() +
                                    d.options().block_size);
      d.run_for(45e-3);
      bool replied = false;
      const auto& frames = d.observer()->frames();
      for (std::size_t f = before; f < frames.size(); ++f) {
        if (frames[f].decode.status == phy::DecodeStatus::kOk &&
            (frames[f].decode.frame.type & 0x80) != 0) {
          replied = true;
        }
      }
      if (replied) {
        // RSSI of the adversary at the shield's receive antenna.
        const auto g = d.medium().gain(adversary.antenna(),
                                       d.shield().rx_antenna());
        const double rssi_dbm = p + dsp::power_to_db(std::norm(g));
        result.success_rssi_dbm.push_back(rssi_dbm);
        sum += rssi_dbm;
        sum_sq += rssi_dbm * rssi_dbm;
        ++result.successes;
      }
    }
  }
  if (result.successes > 0) {
    result.min_dbm = *std::min_element(result.success_rssi_dbm.begin(),
                                       result.success_rssi_dbm.end());
    result.mean_dbm = sum / static_cast<double>(result.successes);
    const double var =
        sum_sq / static_cast<double>(result.successes) -
        result.mean_dbm * result.mean_dbm;
    result.stddev_db = std::sqrt(std::max(var, 0.0));
  }
  return result;
}

BthreshResult estimate_bthresh(std::uint64_t seed, std::size_t packets) {
  BthreshResult result;
  const auto sid_bits = phy::kSidBits;

  DeploymentOptions opt;
  opt.seed = seed;
  opt.with_observer = true;
  // Logging-only shield: jamming off entirely (section 10.1(c)).
  opt.shield_config.enable_passive_jamming = false;
  opt.shield_config.enable_active_protection = false;

  const phy::BitVec sid = phy::make_sid(opt.imd_profile.serial);
  const std::size_t locations = channel::kTestbedLocationCount - 4;
  const std::size_t per_location = packets / locations + 1;

  for (std::size_t li = 0; li < locations && result.packets_sent < packets;
       ++li) {
    DeploymentOptions o = opt;
    o.seed = seed + li;
    Deployment d(o);
    d.shield().set_frame_capture(true);
    const auto& loc = channel::testbed_location(static_cast<int>(li + 1));
    adversary::ActiveAdversaryConfig acfg;
    acfg.position = loc.position();
    acfg.walls = loc.walls;
    acfg.fsk = o.imd_profile.fsk;
    adversary::ActiveAdversaryNode adversary(acfg, d.medium(), &d.log());
    d.add_node(&adversary);
    d.run_for(2e-3);
    const auto command = imd::make_interrogate(o.imd_profile.serial, 7);

    for (std::size_t i = 0;
         i < per_location && result.packets_sent < packets; ++i) {
      d.medium().rerandomize();
      const std::size_t imd_before = d.imd().stats().frames_accepted;
      adversary.inject(command, d.timeline().sample_position() +
                                    d.options().block_size);
      d.run_for(40e-3);
      ++result.packets_sent;
      const bool imd_accepted =
          d.imd().stats().frames_accepted > imd_before;
      // Shield-side decode of this packet, if it detected one.
      std::size_t header_flips = 0;
      bool shield_saw_errors = false;
      for (const auto& f : d.shield().take_monitor_frames()) {
        if (f.raw_bits.size() < sid_bits) continue;
        const std::size_t flips = phy::hamming_distance_at(
            f.raw_bits, 0, phy::BitView(sid.data(), sid_bits));
        if (flips > 0) {
          shield_saw_errors = true;
          header_flips = std::max(header_flips, flips);
        }
      }
      if (imd_accepted && shield_saw_errors) {
        ++result.shield_error_imd_ok;
        result.max_header_bit_flips =
            std::max(result.max_header_bit_flips, header_flips);
      }
    }
  }
  // Conservative doubling of the worst observed flip count, with the
  // paper's value as the floor.
  result.recommended_bthresh =
      std::max<std::size_t>(4, result.max_header_bit_flips * 2);
  return result;
}

}  // namespace hs::shield
