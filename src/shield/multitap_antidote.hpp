// Multipath-capable antidote (paper footnote 2 of section 5):
//
//   "More generally, one could compute the multi-path channel and apply an
//    equalizer on the time-domain antidote signal that inverts the
//    multi-path of the jamming signal."
//
// The flat AntidoteController assumes H_jam->rec is a single complex gain.
// When the coupling between the shield's antennas is frequency-selective
// (multi-tap), a scalar antidote leaves a large residual. This module
// estimates the two channels as FIR filters from the probe exchange and
// designs a time-domain FIR antidote equalizer X(f) = -Hjr(f)/Hself(f),
// realized by frequency sampling and applied to the jamming stream.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dsp/fir.hpp"
#include "dsp/types.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::shield {

/// Least-squares FIR channel estimate: finds taps h[0..taps) minimizing
/// ||y - h * x||^2 for a known probe x (block-Toeplitz normal equations,
/// solved by Gaussian elimination; `taps` is small).
dsp::Samples estimate_fir_channel(dsp::SampleView received,
                                  dsp::SampleView probe, std::size_t taps);

class MultitapAntidote {
 public:
  /// `fir_taps`: length of the estimated channel models;
  /// `equalizer_taps`: length of the designed antidote filter (power of
  /// two for the frequency-sampling design; longer = deeper cancellation).
  MultitapAntidote(std::size_t fir_taps = 4, std::size_t equalizer_taps = 64);

  /// Feeds the probe observations (same probes the flat controller uses).
  void update_jam_channel(dsp::SampleView received, dsp::SampleView probe);
  void update_self_channel(dsp::SampleView received, dsp::SampleView probe);

  bool ready() const { return have_jam_ && have_self_; }

  /// The estimated channel impulse responses.
  const dsp::Samples& jam_channel_taps() const { return h_jam_; }
  const dsp::Samples& self_channel_taps() const { return h_self_; }

  /// Produces the antidote stream for the given jamming samples
  /// (streaming; phase-continuous across calls).
  dsp::Samples antidote_for(dsp::SampleView jamming);

  /// Split-complex overload: overwrites `out` with the antidote for
  /// `jamming`. Shares streaming state with (and is bit-identical to) the
  /// AoS overload — both run the same ComplexFirFilter.
  void antidote_for(dsp::SoaView jamming, dsp::SoaSamples& out);

  /// Resets filter state (e.g., when re-estimating from scratch).
  void reset_stream();

  /// Predicted residual-to-jam power ratio (dB, negative is good) of this
  /// equalizer against the current channel estimates, evaluated on white
  /// jamming — a design-quality diagnostic.
  double predicted_cancellation_db() const;

  /// Warm-state snapshot round trip: both estimated channel FIRs, the
  /// designed equalizer taps, and the streaming filter's history — a
  /// restored equalizer stays phase-continuous with the saved stream.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  void design_equalizer();

  std::size_t fir_taps_;
  std::size_t eq_taps_;
  dsp::Samples h_jam_;
  dsp::Samples h_self_;
  bool have_jam_ = false;
  bool have_self_ = false;
  dsp::Samples eq_;  ///< antidote FIR taps
  /// Streaming application of eq_ (present once designed); owns the
  /// phase-continuity state the old hand-rolled circular buffer held.
  std::optional<dsp::ComplexFirFilter> filter_;
};

}  // namespace hs::shield
