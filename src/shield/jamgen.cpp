#include "shield/jamgen.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "dsp/spectrum.hpp"
#include "obs/metrics.hpp"
#include "snapshot/state_io.hpp"

namespace hs::shield {

using dsp::cplx;
using dsp::Samples;

std::vector<double> fsk_power_profile(const phy::FskParams& fsk,
                                      std::size_t fft_size,
                                      std::uint64_t seed) {
  // Modulate a long random bit sequence and measure its Welch PSD with the
  // generator's FFT size, so profile bins line up one-to-one.
  dsp::Rng rng(seed, "fsk-profile");
  phy::BitVec bits(4096);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.next_u64() & 1);
  const Samples wave = phy::fsk_modulate(fsk, bits);

  dsp::WelchOptions opt;
  opt.segment_size = fft_size;
  const auto psd = dsp::welch_psd(wave, fsk.fs, opt);

  // welch_psd returns DC-centered bins; convert back to FFT order.
  std::vector<double> profile(fft_size);
  for (std::size_t i = 0; i < fft_size; ++i) {
    const std::size_t centered = (i + fft_size / 2) % fft_size;
    profile[i] = psd.power[centered];
  }
  // Normalize to unit mean.
  const double mean =
      std::accumulate(profile.begin(), profile.end(), 0.0) /
      static_cast<double>(fft_size);
  if (mean > 0.0) {
    for (auto& p : profile) p /= mean;
  }
  return profile;
}

JammingSignalGenerator::JammingSignalGenerator(const phy::FskParams& fsk,
                                               JamProfile profile,
                                               std::uint64_t seed,
                                               std::size_t fft_size)
    : fsk_(fsk),
      profile_(profile),
      rng_(seed, "jamming"),
      fft_size_(fft_size) {
  if (!dsp::is_pow2(fft_size_)) {
    throw std::invalid_argument("JammingSignalGenerator: fft_size not 2^k");
  }
  shaped_weights_ = fsk_power_profile(fsk_, fft_size_);
  rebuild_weights();
}

void JammingSignalGenerator::reset(const phy::FskParams& fsk,
                                   JamProfile profile, std::uint64_t seed,
                                   std::size_t fft_size) {
  if (!dsp::is_pow2(fft_size)) {
    throw std::invalid_argument("JammingSignalGenerator: fft_size not 2^k");
  }
  const bool profile_stale = fft_size != fft_size_ ||
                             fsk.fs != fsk_.fs || fsk.sps != fsk_.sps ||
                             fsk.f0 != fsk_.f0 || fsk.f1 != fsk_.f1;
  fsk_ = fsk;
  profile_ = profile;
  rng_ = dsp::Rng(seed, "jamming");
  fft_size_ = fft_size;
  power_mw_ = 1.0;
  if (profile_stale) shaped_weights_ = fsk_power_profile(fsk_, fft_size_);
  rebuild_weights();
  buffer_.clear();
  buffer_pos_ = 0;
}

void JammingSignalGenerator::reseed(std::uint64_t trial_seed) {
  rng_ = dsp::Rng(trial_seed, "jamming");
  buffer_.clear();
  buffer_pos_ = 0;
}

void JammingSignalGenerator::save_state(snapshot::StateWriter& w) const {
  w.begin("jamgen");
  w.f64("fs", fsk_.fs);
  w.u64("sps", fsk_.sps);
  w.f64("f0", fsk_.f0);
  w.f64("f1", fsk_.f1);
  w.u64("fft_size", fft_size_);
  w.u64("profile", static_cast<std::uint64_t>(profile_));
  snapshot::write_rng(w, "rng", rng_);
  w.f64("power_mw", power_mw_);
  w.f64_vec("shaped_weights", shaped_weights_);
  w.soa("buffer", buffer_.view());
  w.u64("buffer_pos", buffer_pos_);
  w.end("jamgen");
}

void JammingSignalGenerator::load_state(snapshot::StateReader& r) {
  r.begin("jamgen");
  if (r.f64("fs") != fsk_.fs || r.u64("sps") != fsk_.sps ||
      r.f64("f0") != fsk_.f0 || r.f64("f1") != fsk_.f1 ||
      r.u64("fft_size") != fft_size_) {
    throw snapshot::SnapshotError(
        "snapshot: jamming generator geometry mismatch");
  }
  const std::uint64_t profile = r.u64("profile");
  if (profile > static_cast<std::uint64_t>(JamProfile::kConstant)) {
    throw snapshot::SnapshotError("snapshot: unknown jam profile");
  }
  profile_ = static_cast<JamProfile>(profile);
  snapshot::read_rng(r, "rng", rng_);
  power_mw_ = r.f64("power_mw");
  shaped_weights_ = r.f64_vec("shaped_weights");
  if (shaped_weights_.size() != fft_size_) {
    throw snapshot::SnapshotError("snapshot: jam profile length mismatch");
  }
  r.soa("buffer", buffer_);
  buffer_pos_ = r.u64("buffer_pos");
  if (buffer_pos_ > buffer_.size()) {
    throw snapshot::SnapshotError("snapshot: jam buffer cursor invalid");
  }
  // weights_ and scale_ are pure functions of the restored fields.
  rebuild_weights();
  r.end("jamgen");
}

void JammingSignalGenerator::rebuild_weights() {
  if (profile_ == JamProfile::kShaped) {
    weights_ = shaped_weights_;
  } else {
    weights_.assign(fft_size_, 1.0);
  }
  // For bin variances p_k, the IFFT sample variance is sum(p_k) / N^2.
  // Scale so the time-domain mean power equals power_mw_.
  const double sum = std::accumulate(weights_.begin(), weights_.end(), 0.0);
  const double sample_var = sum / static_cast<double>(fft_size_ * fft_size_);
  scale_ = std::sqrt(power_mw_ / std::max(sample_var, 1e-30));
}

void JammingSignalGenerator::set_power(double power_mw) {
  power_mw_ = power_mw;
  rebuild_weights();
}

void JammingSignalGenerator::set_profile(JamProfile profile) {
  profile_ = profile;
  rebuild_weights();
}

void JammingSignalGenerator::refill() {
  // Bins are drawn in AoS order (one cgaussian per bin, exactly as
  // before) so the RNG stream is unchanged; the IFFT output is then
  // deinterleaved once per fft_size_ samples into the split buffer the
  // slicing below (and SoA consumers) read plane-wise.
  Samples bins(fft_size_);
  for (std::size_t k = 0; k < fft_size_; ++k) {
    bins[k] = rng_.cgaussian(weights_[k]);
  }
  dsp::ifft_inplace(bins);
  buffer_.resize(fft_size_);
  double* re = buffer_.re();
  double* im = buffer_.im();
  for (std::size_t k = 0; k < fft_size_; ++k) {
    re[k] = bins[k].real() * scale_;
    im[k] = bins[k].imag() * scale_;
  }
  buffer_pos_ = 0;
}

Samples JammingSignalGenerator::next(std::size_t n) {
  obs::ScopedTimer obs_timer(obs::Phase::kJamgen);
  Samples out;
  out.reserve(n);
  while (out.size() < n) {
    if (buffer_pos_ >= buffer_.size()) refill();
    const std::size_t take =
        std::min(n - out.size(), buffer_.size() - buffer_pos_);
    const double* re = buffer_.re() + buffer_pos_;
    const double* im = buffer_.im() + buffer_pos_;
    for (std::size_t i = 0; i < take; ++i) out.emplace_back(re[i], im[i]);
    buffer_pos_ += take;
  }
  return out;
}

void JammingSignalGenerator::next(std::size_t n, dsp::SoaSamples& out) {
  obs::ScopedTimer obs_timer(obs::Phase::kJamgen);
  out.clear();
  out.reserve(n);
  while (out.size() < n) {
    if (buffer_pos_ >= buffer_.size()) refill();
    const std::size_t take =
        std::min(n - out.size(), buffer_.size() - buffer_pos_);
    out.append(buffer_.view().subview(buffer_pos_, take));
    buffer_pos_ += take;
  }
}

}  // namespace hs::shield
