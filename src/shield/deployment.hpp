/// @file
/// Standard experiment scenario builder: medium + timeline + IMD + shield
/// (+ optional observer), wired exactly like the paper's Fig. 6 testbed.
/// All benches, examples and integration tests build on this, either
/// directly or through the campaign engine's trial-context pool, which
/// reset-and-reseeds one Deployment across trials (see reset()).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "adversary/monitor.hpp"
#include "channel/medium.hpp"
#include "imd/device.hpp"
#include "imd/profiles.hpp"
#include "shield/config.hpp"
#include "shield/shield.hpp"
#include "sim/timeline.hpp"

namespace hs::shield {

struct DeploymentOptions {
  std::uint64_t seed = 1;
  imd::ImdProfile imd_profile = imd::virtuoso_profile();
  bool shield_present = true;
  /// Place a zero-loss observer next to the IMD (the "USRP observer
  /// sandwiched between the two slabs of meat" of section 10.3) that
  /// records whether the IMD transmitted.
  bool with_observer = false;
  std::size_t block_size = 48;  ///< 160 us at 300 kHz
  channel::LinkBudgetConfig budget{};
  /// Overrides applied to the shield's config (protected_id and fsk are
  /// always taken from the IMD profile).
  ShieldConfig shield_config{};
  /// Seconds of warm-up simulated at construction so the shield has
  /// estimated its channels before the experiment starts.
  double warmup_s = 5e-3;
};

class Deployment {
 public:
  explicit Deployment(const DeploymentOptions& options);

  /// True when this deployment's node set can be re-seeded into the state
  /// a fresh `Deployment(options)` would have: the set of allocated nodes
  /// (shield, observer) must match; everything else — seed, profile,
  /// shield config, link budget — is replayed by reset().
  bool can_reset_to(const DeploymentOptions& options) const;

  /// Re-seeds the deployment in place: the medium forgets all antennas
  /// and draws, every node resets and re-registers in construction order,
  /// and the warm-up re-runs. The result is bit-identical to a freshly
  /// constructed `Deployment(options)` (asserted by the campaign trial-
  /// pool determinism test) while skipping the expensive construction
  /// work. Caller must have checked can_reset_to(). Extra caller-built
  /// nodes registered via add_node() are forgotten — re-add (reset) them
  /// after this returns, exactly as after fresh construction.
  void reset(const DeploymentOptions& options);

  channel::Medium& medium() { return *medium_; }
  sim::Timeline& timeline() { return *timeline_; }
  imd::ImdDevice& imd() { return *imd_; }
  bool has_shield() const { return shield_ != nullptr; }
  ShieldNode& shield() { return *shield_; }
  adversary::MonitorNode* observer() { return observer_.get(); }
  const DeploymentOptions& options() const { return options_; }
  sim::EventLog& log() { return timeline_->log(); }

  /// Registers an extra node built by the caller against medium()
  /// (must be called before stepping further).
  void add_node(sim::RadioNode* node) { timeline_->add_node(node); }

  /// Runs the simulation for the given duration.
  void run_for(double seconds) { timeline_->run_for(seconds); }

 private:
  void wire_shield_directivity();

  DeploymentOptions options_;
  std::unique_ptr<channel::Medium> medium_;
  std::unique_ptr<sim::Timeline> timeline_;
  std::unique_ptr<imd::ImdDevice> imd_;
  std::unique_ptr<ShieldNode> shield_;
  std::unique_ptr<adversary::MonitorNode> observer_;
};

}  // namespace hs::shield
