/// @file
/// Standard experiment scenario builder: medium + timeline + IMD + shield
/// (+ optional observer), wired exactly like the paper's Fig. 6 testbed.
/// All benches, examples and integration tests build on this, either
/// directly or through the campaign engine's trial-context pool, which
/// reset-and-reseeds one Deployment across trials (see reset()).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "adversary/monitor.hpp"
#include "channel/medium.hpp"
#include "imd/device.hpp"
#include "imd/profiles.hpp"
#include "shield/config.hpp"
#include "shield/shield.hpp"
#include "sim/timeline.hpp"

namespace hs::snapshot {
class StateDoc;
}  // namespace hs::snapshot

namespace hs::shield {

struct DeploymentOptions {
  std::uint64_t seed = 1;
  /// Two-phase seeding for warm-state snapshots. When nonzero,
  /// construction and warm-up draw every stream from THIS seed, and the
  /// per-trial streams are reseeded from `seed` afterwards (see
  /// Deployment::begin_trial) — so the post-warmup state is a pure
  /// function of the configuration + warmup_seed and one snapshot of it
  /// serves every trial, shard and process. Zero keeps the single-phase
  /// legacy behavior: everything draws from `seed`, no post-warmup
  /// reseed (existing tests and examples are bit-for-bit unchanged).
  std::uint64_t warmup_seed = 0;
  imd::ImdProfile imd_profile = imd::virtuoso_profile();
  bool shield_present = true;
  /// Place a zero-loss observer next to the IMD (the "USRP observer
  /// sandwiched between the two slabs of meat" of section 10.3) that
  /// records whether the IMD transmitted.
  bool with_observer = false;
  std::size_t block_size = 48;  ///< 160 us at 300 kHz
  channel::LinkBudgetConfig budget{};
  /// Overrides applied to the shield's config (protected_id and fsk are
  /// always taken from the IMD profile).
  ShieldConfig shield_config{};
  /// Seconds of warm-up simulated at construction so the shield has
  /// estimated its channels before the experiment starts.
  double warmup_s = 5e-3;
};

class Deployment {
 public:
  explicit Deployment(const DeploymentOptions& options);

  /// Builds the node set for `options` WITHOUT simulating the warm-up,
  /// then restores the warm snapshot — the fast path for a worker's (or
  /// shard's) first trial when another process already published the
  /// snapshot. Equivalent to Deployment(options) followed by
  /// restore_warm(warm, options), minus the redundant warm-up replay.
  Deployment(const snapshot::StateDoc& warm,
             const DeploymentOptions& options);

  /// True when this deployment's node set can be re-seeded into the state
  /// a fresh `Deployment(options)` would have: the set of allocated nodes
  /// (shield, observer) must match; everything else — seed, profile,
  /// shield config, link budget — is replayed by reset().
  bool can_reset_to(const DeploymentOptions& options) const;

  /// Re-seeds the deployment in place: the medium forgets all antennas
  /// and draws, every node resets and re-registers in construction order,
  /// and the warm-up re-runs. The result is bit-identical to a freshly
  /// constructed `Deployment(options)` (asserted by the campaign trial-
  /// pool determinism test) while skipping the expensive construction
  /// work. Caller must have checked can_reset_to(). Extra caller-built
  /// nodes registered via add_node() are forgotten — re-add (reset) them
  /// after this returns, exactly as after fresh construction.
  void reset(const DeploymentOptions& options);

  channel::Medium& medium() { return *medium_; }
  sim::Timeline& timeline() { return *timeline_; }
  imd::ImdDevice& imd() { return *imd_; }
  bool has_shield() const { return shield_ != nullptr; }
  ShieldNode& shield() { return *shield_; }
  adversary::MonitorNode* observer() { return observer_.get(); }
  const DeploymentOptions& options() const { return options_; }
  sim::EventLog& log() { return timeline_->log(); }

  /// Registers an extra node built by the caller against medium()
  /// (must be called before stepping further).
  void add_node(sim::RadioNode* node) { timeline_->add_node(node); }

  /// Runs the simulation for the given duration.
  void run_for(double seconds) { timeline_->run_for(seconds); }

  // ---- Warm-state snapshots ---------------------------------------------
  /// Serializes the deployment's complete state — medium, timeline/log,
  /// IMD, shield, observer — as a versioned snapshot document keyed by
  /// deployment_warm_key(options()). Taken right after construction or
  /// reset (i.e. post-warm-up, post-begin_trial; begin_trial fully
  /// overwrites everything it touches, so the capture is trial-portable).
  std::string save_warm() const;

  /// Restores the deployment into exactly the state a fresh
  /// `Deployment(options)` (warm-up replay included) would have, without
  /// simulating a single block: loads the snapshot, re-registers the
  /// restored nodes, then runs begin_trial(options.seed). The snapshot's
  /// embedded key must equal deployment_warm_key(options) and the node
  /// set must satisfy can_reset_to(options) — both enforced with hard
  /// SnapshotErrors, and a failed restore never leaves a half-written
  /// deployment in the pool (the caller discards it).
  void restore_warm(const snapshot::StateDoc& doc,
                    const DeploymentOptions& options);

  /// Two-phase seeding, trial half: reseeds the medium (and redraws its
  /// link realizations), the IMD and the shield from per-trial streams
  /// derived from `trial_seed`. No-op in legacy single-phase mode
  /// (warmup_seed == 0). Ctor, reset() and restore_warm() all end with
  /// this, so cold and warm-restored trials run identical code.
  void begin_trial(std::uint64_t trial_seed);

 private:
  void wire_shield_directivity();

  DeploymentOptions options_;
  std::unique_ptr<channel::Medium> medium_;
  std::unique_ptr<sim::Timeline> timeline_;
  std::unique_ptr<imd::ImdDevice> imd_;
  std::unique_ptr<ShieldNode> shield_;
  std::unique_ptr<adversary::MonitorNode> observer_;
};

/// Content digest (sha256 hex) of everything that determines a
/// deployment's post-warm-up state: the full configuration (profile,
/// shield config, link budget, node set, warm-up duration) plus the
/// warm-up seed — and, in legacy single-phase mode, the trial seed
/// itself. The SnapshotCache key: equal keys ⇒ bit-identical post-warmup
/// state, different configuration ⇒ different key.
std::string deployment_warm_key(const DeploymentOptions& options);

}  // namespace hs::shield
