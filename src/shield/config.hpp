// All shield parameters in one place, with the paper's calibrated values
// as defaults (sections 6, 7 and 10.1).
#pragma once

#include <cstddef>
#include <cstdint>

#include "phy/frame.hpp"
#include "phy/fsk.hpp"
#include "shield/jamgen.hpp"

namespace hs::shield {

struct ShieldConfig {
  /// Serial number of the IMD this shield protects.
  phy::DeviceId protected_id{};

  phy::FskParams fsk{};

  // ---- Passive-protection timing (section 6; calibrated per IMD) -------
  double t1_s = 2.8e-3;          ///< earliest reply start after a command
  double t2_s = 3.7e-3;          ///< latest reply start
  double max_packet_s = 21e-3;   ///< P, the IMD's longest packet

  // ---- Power --------------------------------------------------------
  double max_tx_power_dbm = -16.0;  ///< FCC MICS EIRP limit
  /// Jam this many dB above the IMD power measured at the shield
  /// (20 dB is the paper's operating point, Fig. 8).
  double jam_margin_db = 20.0;
  /// Assumed IMD RSSI before the first decoded reply provides a
  /// measurement.
  double initial_imd_rssi_dbm = -36.0;

  // ---- Active protection (section 7) ----------------------------------
  bool enable_active_protection = true;
  std::size_t bthresh = 4;         ///< S_id bit-flip tolerance (10.1(c))
  /// Alarm threshold: 3 dB below the minimum adversarial RSSI that can
  /// elicit an IMD response despite jamming, per Table 1's methodology
  /// (regenerate with bench_table1_pthresh; our field-referenced dBm scale
  /// differs from the paper's USRP-referenced readings by a fixed gain).
  double pthresh_dbm = -19.0;
  bool alarm_enabled = true;
  std::size_t min_active_jam_blocks = 4;  ///< guarantee corruption coverage
  std::size_t idle_confirm_blocks = 1;    ///< quiet blocks before unjamming
  double idle_factor = 4.0;               ///< power factor over floor = busy
  /// Conservative cancellation assumed when predicting the shield's own
  /// jamming/self-interference residuals for thresholds.
  double nominal_cancellation_db = 26.0;

  // ---- Passive protection ---------------------------------------------
  bool enable_passive_jamming = true;

  // ---- Antidote / channel estimation (section 5) -----------------------
  double probe_interval_s = 0.2;     ///< re-probe cadence when idle
  double probe_power_dbm = -46.0;    ///< low power for spatial reuse
  std::size_t probe_length = 96;     ///< samples per probe
  /// Analog accuracy of the antidote path; 2.5% gives the ~32 dB mean
  /// cancellation of Fig. 7.
  double hardware_error_sigma = 0.025;

  // ---- Hardware couplings (fixed device characteristics) ---------------
  double self_coupling_db = 3.0;      ///< |H_self| wire loss
  double jam_rec_coupling_db = 30.0;  ///< |H_jam->rec| antenna coupling
                                      ///< (ratio -27 dB, as in section 5)

  // ---- Jamming signal ---------------------------------------------------
  JamProfile jam_profile = JamProfile::kShaped;
  std::size_t jam_fft_size = 256;
};

struct ShieldStats {
  std::size_t commands_relayed = 0;
  std::size_t replies_decoded = 0;   ///< IMD frames decoded while jamming
  std::size_t reply_crc_failures = 0;
  std::size_t passive_jams = 0;      ///< reply windows jammed
  std::size_t active_jams = 0;       ///< unauthorized packets jammed
  std::size_t alarms = 0;
  std::size_t aborted_tx = 0;        ///< own tx aborted -> jam (capture def.)
  std::size_t probes = 0;
  std::size_t cross_traffic_ignored = 0;  ///< locks dropped, no S_id match
};

}  // namespace hs::shield
