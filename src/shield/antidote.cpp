#include "shield/antidote.hpp"

#include <stdexcept>

namespace hs::shield {

using dsp::cplx;

AntidoteController::AntidoteController(double hardware_error_sigma,
                                       std::uint64_t seed)
    : sigma_(hardware_error_sigma), rng_(seed, "antidote") {
  begin_epoch();
}

void AntidoteController::update_jam_channel(cplx h) { h_jam_to_rec_ = h; }

void AntidoteController::update_self_channel(cplx h) { h_self_ = h; }

void AntidoteController::begin_epoch() {
  hardware_error_ = rng_.cgaussian(sigma_ * sigma_);
}

cplx AntidoteController::ideal_coefficient() const {
  if (!ready()) throw std::logic_error("antidote: channels not estimated");
  return -(*h_jam_to_rec_) / (*h_self_);
}

cplx AntidoteController::antidote_coefficient() const {
  return ideal_coefficient() * (cplx(1.0, 0.0) + hardware_error_);
}

cplx AntidoteController::jam_channel() const {
  if (!h_jam_to_rec_) throw std::logic_error("antidote: no jam estimate");
  return *h_jam_to_rec_;
}

cplx AntidoteController::self_channel() const {
  if (!h_self_) throw std::logic_error("antidote: no self estimate");
  return *h_self_;
}

void AntidoteController::reset() {
  h_jam_to_rec_.reset();
  h_self_.reset();
  begin_epoch();
}

dsp::Samples make_probe_waveform(std::size_t length, std::uint64_t seed) {
  dsp::Rng rng(seed, "probe");
  dsp::Samples probe(length);
  // QPSK-like PN probe: constant envelope, flat-ish spectrum.
  static const cplx kSymbols[4] = {
      {0.7071067811865476, 0.7071067811865476},
      {-0.7071067811865476, 0.7071067811865476},
      {-0.7071067811865476, -0.7071067811865476},
      {0.7071067811865476, -0.7071067811865476},
  };
  for (auto& x : probe) x = kSymbols[rng.next_u64() & 3];
  return probe;
}

}  // namespace hs::shield
