#include "shield/antidote.hpp"

#include <stdexcept>

#include "snapshot/state_io.hpp"

namespace hs::shield {

using dsp::cplx;

AntidoteController::AntidoteController(double hardware_error_sigma,
                                       std::uint64_t seed)
    : sigma_(hardware_error_sigma), rng_(seed, "antidote") {
  begin_epoch();
}

void AntidoteController::update_jam_channel(cplx h) { h_jam_to_rec_ = h; }

void AntidoteController::update_self_channel(cplx h) { h_self_ = h; }

void AntidoteController::begin_epoch() {
  hardware_error_ = rng_.cgaussian(sigma_ * sigma_);
}

cplx AntidoteController::ideal_coefficient() const {
  if (!ready()) throw std::logic_error("antidote: channels not estimated");
  return -(*h_jam_to_rec_) / (*h_self_);
}

cplx AntidoteController::antidote_coefficient() const {
  return ideal_coefficient() * (cplx(1.0, 0.0) + hardware_error_);
}

cplx AntidoteController::jam_channel() const {
  if (!h_jam_to_rec_) throw std::logic_error("antidote: no jam estimate");
  return *h_jam_to_rec_;
}

cplx AntidoteController::self_channel() const {
  if (!h_self_) throw std::logic_error("antidote: no self estimate");
  return *h_self_;
}

void AntidoteController::reset() {
  h_jam_to_rec_.reset();
  h_self_.reset();
  begin_epoch();
}

void AntidoteController::reseed(std::uint64_t trial_seed) {
  rng_ = dsp::Rng(trial_seed, "antidote");
}

void AntidoteController::save_state(snapshot::StateWriter& w) const {
  w.begin("antidote");
  w.f64("sigma", sigma_);
  snapshot::write_rng(w, "rng", rng_);
  w.boolean("have_jam", h_jam_to_rec_.has_value());
  w.cx("h_jam", h_jam_to_rec_.value_or(dsp::cplx{}));
  w.boolean("have_self", h_self_.has_value());
  w.cx("h_self", h_self_.value_or(dsp::cplx{}));
  w.cx("hardware_error", hardware_error_);
  w.end("antidote");
}

void AntidoteController::load_state(snapshot::StateReader& r) {
  r.begin("antidote");
  sigma_ = r.f64("sigma");
  snapshot::read_rng(r, "rng", rng_);
  const bool have_jam = r.boolean("have_jam");
  const dsp::cplx h_jam = r.cx("h_jam");
  h_jam_to_rec_ = have_jam ? std::optional<dsp::cplx>(h_jam) : std::nullopt;
  const bool have_self = r.boolean("have_self");
  const dsp::cplx h_self = r.cx("h_self");
  h_self_ = have_self ? std::optional<dsp::cplx>(h_self) : std::nullopt;
  hardware_error_ = r.cx("hardware_error");
  r.end("antidote");
}

dsp::Samples make_probe_waveform(std::size_t length, std::uint64_t seed) {
  dsp::Rng rng(seed, "probe");
  dsp::Samples probe(length);
  // QPSK-like PN probe: constant envelope, flat-ish spectrum.
  static const cplx kSymbols[4] = {
      {0.7071067811865476, 0.7071067811865476},
      {-0.7071067811865476, 0.7071067811865476},
      {-0.7071067811865476, -0.7071067811865476},
      {0.7071067811865476, -0.7071067811865476},
  };
  for (auto& x : probe) x = kSymbols[rng.next_u64() & 3];
  return probe;
}

}  // namespace hs::shield
