// Identifying-sequence matcher (paper section 7).
//
// S_id is the m-bit sequence that identifies packets destined for the
// protected IMD: the physical-layer preamble, sync word, and the device's
// 10-byte serial number (section 7(a)). For each newly decoded bit the
// shield checks the last m bits against S_id; if they differ by fewer than
// b_thresh bits, the packet is for the IMD and must be jammed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "phy/bits.hpp"

namespace hs::snapshot {
class StateWriter;
class StateReader;
}  // namespace hs::snapshot

namespace hs::shield {

class SidMatcher {
 public:
  /// `sid` is the identifying bit sequence; `bthresh` the tolerated bit
  /// difference (the paper calibrates b_thresh = 4 in section 10.1(c)).
  /// The last `exact_suffix_bits` bits must match exactly regardless of
  /// b_thresh — used for the direction bit that separates commands to the
  /// IMD from the IMD's own replies.
  SidMatcher(phy::BitVec sid, std::size_t bthresh,
             std::size_t exact_suffix_bits = 0);

  /// Feeds one newly decoded bit. Returns true when the last m bits match
  /// S_id within b_thresh (a match "fires" once; reset() re-arms it).
  bool push(std::uint8_t bit);

  /// Feeds a run of bits; true if any prefix fired.
  bool push(phy::BitView bits);

  /// Scans a whole bit vector for any matching window (stateless helper).
  bool matches_anywhere(phy::BitView bits) const;

  /// Hamming distance of the best window in `bits` (SIZE_MAX if shorter
  /// than m).
  std::size_t best_distance(phy::BitView bits) const;

  bool fired() const { return fired_; }
  void reset();

  std::size_t sid_bits() const { return sid_.size(); }
  std::size_t bthresh() const { return bthresh_; }

  /// Warm-state snapshot round trip of the matcher's ring window. S_id
  /// itself is configuration; the load target must match its length.
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

 private:
  phy::BitVec sid_;
  std::size_t bthresh_;
  std::size_t exact_suffix_bits_;
  phy::BitVec window_;   // ring buffer of the last m bits
  std::size_t head_ = 0;
  std::size_t seen_ = 0;
  bool fired_ = false;
};

}  // namespace hs::shield
