#include "shield/wideband.hpp"

#include "phy/frame.hpp"

namespace hs::shield {

WidebandMonitor::WidebandMonitor(const phy::DeviceId& protected_id,
                                 const phy::FskParams& fsk,
                                 std::size_t bthresh) {
  phy::BitVec sid = phy::make_sid(protected_id);
  sid.push_back(0);  // direction bit: commands only
  for (auto& ch : per_channel_) {
    ch.receiver = std::make_unique<phy::FskReceiver>(fsk);
    ch.matcher = std::make_unique<SidMatcher>(sid, bthresh,
                                              /*exact_suffix_bits=*/1);
  }
}

void WidebandMonitor::push(dsp::SampleView wideband) {
  consumed_ += wideband.size();
  for (auto& s : scratch_) s.clear();
  channelizer_.process(wideband, scratch_);
  for (std::size_t c = 0; c < mics::kChannelCount; ++c) {
    auto& ch = per_channel_[c];
    auto& st = state_[c];
    ch.receiver->push(scratch_[c]);

    // Mid-packet S_id matching on the partially decoded bits.
    if (ch.receiver->locked()) {
      if (ch.receiver->lock_start_sample() != ch.lock_start) {
        ch.lock_start = ch.receiver->lock_start_sample();
        ch.checked_bits = 0;
        ch.matcher->reset();
      }
      const auto& bits = ch.receiver->partial_bits();
      for (std::size_t i = ch.checked_bits; i < bits.size(); ++i) {
        if (ch.matcher->push(bits[i])) {
          st.sid_matched = true;
          ++st.matches;
        }
      }
      ch.checked_bits = bits.size();
    }
    while (auto frame = ch.receiver->pop()) {
      ++st.frames_seen;
      st.last_rssi = frame->rssi;
      // A large push may complete a frame within one call, skipping the
      // mid-packet path entirely; scan the completed bits too.
      if (!st.sid_matched &&
          ch.matcher->matches_anywhere(phy::BitView(
              frame->raw_bits.data(), frame->raw_bits.size()))) {
        st.sid_matched = true;
        ++st.matches;
      }
    }
  }
}

std::uint16_t WidebandMonitor::jam_mask() const {
  std::uint16_t mask = 0;
  for (std::size_t c = 0; c < mics::kChannelCount; ++c) {
    if (state_[c].sid_matched) {
      mask = static_cast<std::uint16_t>(mask | (1u << c));
    }
  }
  return mask;
}

void WidebandMonitor::clear_matches() {
  for (std::size_t c = 0; c < mics::kChannelCount; ++c) {
    state_[c].sid_matched = false;
    per_channel_[c].matcher->reset();
  }
}

}  // namespace hs::shield
