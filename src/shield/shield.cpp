#include "shield/shield.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "channel/geometry.hpp"
#include "dsp/correlate.hpp"
#include "dsp/units.hpp"
#include "phy/frame.hpp"
#include "snapshot/state_io.hpp"

namespace hs::shield {

using dsp::cplx;
using dsp::Samples;

namespace {

/// Initial noise-floor estimate (dBm) before minimum tracking adapts it;
/// reset() must seed the same value as the constructor or pooled trials
/// would diverge from fresh construction.
constexpr double kInitialNoiseFloorDbm = -112.0;

/// S_id: preamble + sync + device serial (section 7(a)), plus the
/// direction bit that distinguishes packets *destined to* the IMD
/// (commands, type MSB 0) from the IMD's own replies.
phy::BitVec make_shield_sid(const ShieldConfig& config) {
  phy::BitVec sid = phy::make_sid(config.protected_id);
  sid.push_back(0);
  return sid;
}

}  // namespace

ShieldNode::ShieldNode(const ShieldConfig& config, channel::Medium& medium,
                       sim::EventLog* log, std::uint64_t seed)
    : config_(config),
      log_(log),
      rng_(seed, "shield"),
      jamgen_(config.fsk, config.jam_profile, seed, config.jam_fft_size),
      antidote_(config.hardware_error_sigma, seed),
      sid_(make_shield_sid(config), config.bthresh, /*exact_suffix_bits=*/1),
      monitor_(config.fsk),
      modulator_(config.fsk),
      probe_waveform_(make_probe_waveform(
          std::min(config.probe_length, medium.block_size()), seed)),
      probe_amplitude_(std::sqrt(dsp::dbm_to_mw(config.probe_power_dbm))),
      noise_floor_mw_(dsp::dbm_to_mw(kInitialNoiseFloorDbm)) {
  register_with_medium(medium);
  jamgen_.set_power(dsp::dbm_to_mw(jam_power_dbm()));
}

void ShieldNode::register_with_medium(channel::Medium& medium) {
  channel::AntennaDesc jam_desc;
  jam_desc.name = "shield/jam-antenna";
  jam_desc.position = channel::kShieldPosition;
  jam_ant_ = medium.add_antenna(jam_desc);

  channel::AntennaDesc rx_desc;
  rx_desc.name = "shield/rx-antenna";
  rx_desc.position = channel::kShieldPosition;
  rx_ant_ = medium.add_antenna(rx_desc);

  // Hardware couplings: the self-loop wire between the rx antenna's
  // transmit and receive chains, and the over-the-air coupling between
  // the two adjacent antennas. |H_jam->rec / H_self| ~ -27 dB (section 5).
  const cplx h_self =
      dsp::db_to_amplitude(-config_.self_coupling_db) * rng_.random_phase();
  const cplx h_jam_rec =
      dsp::db_to_amplitude(-config_.jam_rec_coupling_db) * rng_.random_phase();
  medium.set_pair_gain(rx_ant_, rx_ant_, h_self);
  medium.set_pair_gain(jam_ant_, rx_ant_, h_jam_rec);
}

void ShieldNode::reset(const ShieldConfig& config, channel::Medium& medium,
                       sim::EventLog* log, std::uint64_t seed) {
  // Mirror of the constructor, member for member (the campaign trial-pool
  // determinism test asserts the equivalence). Only jamgen_ keeps state:
  // its cached spectral profile, which is seed-independent.
  config_ = config;
  log_ = log;
  rng_ = dsp::Rng(seed, "shield");
  jamgen_.reset(config.fsk, config.jam_profile, seed, config.jam_fft_size);
  antidote_ = AntidoteController(config.hardware_error_sigma, seed);
  sid_ = SidMatcher(make_shield_sid(config), config.bthresh,
                    /*exact_suffix_bits=*/1);
  monitor_ = phy::FskReceiver(config.fsk);
  modulator_ = phy::FskModulator(config.fsk);
  tx_ = sim::TransmitScheduler();
  probe_waveform_ = make_probe_waveform(
      std::min(config.probe_length, medium.block_size()), seed);
  probe_amplitude_ = std::sqrt(dsp::dbm_to_mw(config.probe_power_dbm));
  noise_floor_mw_ = dsp::dbm_to_mw(kInitialNoiseFloorDbm);

  probe_phase_ = ProbePhase::kNone;
  probe_due_ = true;
  last_probe_s_ = -1.0;
  active_jam_ = false;
  manual_jam_ = false;
  antidote_enabled_ = true;
  jammed_this_block_ = false;
  jam_block_.clear();
  active_jam_started_block_ = 0;
  quiet_blocks_ = 0;
  high_power_suspect_ = false;
  passive_windows_.clear();
  pending_.clear();
  own_tx_ranges_.clear();
  own_tx_block_.clear();
  transmitted_this_block_ = false;
  self_cancel_error_ = cplx{0.0, 0.0};
  last_block_power_ = 0.0;
  imd_rssi_mw_ = 0.0;
  jam_power_override_dbm_.reset();
  sid_checked_bits_ = 0;
  current_lock_start_ = 0;
  current_lock_peak_power_ = 0.0;
  decoded_replies_.clear();
  capture_frames_ = false;
  captured_frames_.clear();
  stats_ = ShieldStats{};

  register_with_medium(medium);
  jamgen_.set_power(dsp::dbm_to_mw(jam_power_dbm()));
}

void ShieldNode::reseed(std::uint64_t trial_seed) {
  rng_ = dsp::Rng(trial_seed, "shield");
  jamgen_.reseed(trial_seed);
  antidote_.reseed(trial_seed);
}

namespace {

void save_frame(snapshot::StateWriter& w, const phy::Frame& f) {
  w.bytes("device_id", f.device_id.data(), f.device_id.size());
  w.u64("type", f.type);
  w.u64("seq", f.seq);
  w.bytes("payload", f.payload);
}

phy::Frame load_frame(snapshot::StateReader& r) {
  phy::Frame f;
  const auto& id = r.bytes("device_id");
  if (id.size() != f.device_id.size()) {
    throw snapshot::SnapshotError("snapshot: device id length mismatch");
  }
  std::copy(id.begin(), id.end(), f.device_id.begin());
  f.type = static_cast<std::uint8_t>(r.u64("type"));
  f.seq = static_cast<std::uint8_t>(r.u64("seq"));
  f.payload = r.bytes("payload");
  return f;
}

}  // namespace

void ShieldNode::save_state(snapshot::StateWriter& w) const {
  w.begin("shield");
  w.u64("jam_ant", jam_ant_);
  w.u64("rx_ant", rx_ant_);
  snapshot::write_rng(w, "rng", rng_);
  jamgen_.save_state(w);
  antidote_.save_state(w);
  sid_.save_state(w);
  monitor_.save_state(w);
  w.f64("mod_phase", modulator_.phase());
  tx_.save_state(w);

  w.u64("probe_phase", static_cast<std::uint64_t>(probe_phase_));
  w.samples("probe_waveform", probe_waveform_);
  w.f64("probe_amplitude", probe_amplitude_);
  w.boolean("probe_due", probe_due_);
  w.f64("last_probe_s", last_probe_s_);

  w.boolean("active_jam", active_jam_);
  w.boolean("manual_jam", manual_jam_);
  w.boolean("antidote_enabled", antidote_enabled_);
  w.boolean("jammed_this_block", jammed_this_block_);
  w.u64("active_jam_started_block", active_jam_started_block_);
  w.u64("quiet_blocks", quiet_blocks_);
  w.boolean("high_power_suspect", high_power_suspect_);
  w.u64("passive_windows", passive_windows_.size());
  for (const auto& [from, to] : passive_windows_) {
    w.u64("from", from);
    w.u64("to", to);
  }

  w.u64("pending", pending_.size());
  for (const phy::Frame& f : pending_) save_frame(w, f);
  w.u64("own_tx_ranges", own_tx_ranges_.size());
  for (const auto& [from, to] : own_tx_ranges_) {
    w.u64("from", from);
    w.u64("to", to);
  }
  w.boolean("transmitted_this_block", transmitted_this_block_);
  w.cx("self_cancel_error", self_cancel_error_);

  w.f64("noise_floor_mw", noise_floor_mw_);
  w.f64("last_block_power", last_block_power_);
  w.f64("imd_rssi_mw", imd_rssi_mw_);
  w.boolean("have_jam_override", jam_power_override_dbm_.has_value());
  w.f64("jam_override_dbm", jam_power_override_dbm_.value_or(0.0));
  w.u64("sid_checked_bits", sid_checked_bits_);
  w.u64("current_lock_start", current_lock_start_);
  w.f64("current_lock_peak_power", current_lock_peak_power_);

  w.u64("decoded_replies", decoded_replies_.size());
  for (const auto& f : decoded_replies_) phy::save_received_frame(w, f);
  w.boolean("capture_frames", capture_frames_);
  w.u64("captured_frames", captured_frames_.size());
  for (const auto& f : captured_frames_) phy::save_received_frame(w, f);

  w.u64("stats.commands_relayed", stats_.commands_relayed);
  w.u64("stats.replies_decoded", stats_.replies_decoded);
  w.u64("stats.reply_crc_failures", stats_.reply_crc_failures);
  w.u64("stats.passive_jams", stats_.passive_jams);
  w.u64("stats.active_jams", stats_.active_jams);
  w.u64("stats.alarms", stats_.alarms);
  w.u64("stats.aborted_tx", stats_.aborted_tx);
  w.u64("stats.probes", stats_.probes);
  w.u64("stats.cross_traffic_ignored", stats_.cross_traffic_ignored);
  w.end("shield");
}

void ShieldNode::load_state(snapshot::StateReader& r) {
  r.begin("shield");
  jam_ant_ = r.u64("jam_ant");
  rx_ant_ = r.u64("rx_ant");
  snapshot::read_rng(r, "rng", rng_);
  jamgen_.load_state(r);
  antidote_.load_state(r);
  sid_.load_state(r);
  monitor_.load_state(r);
  modulator_.set_phase(r.f64("mod_phase"));
  tx_.load_state(r);

  const std::uint64_t probe_phase = r.u64("probe_phase");
  if (probe_phase > static_cast<std::uint64_t>(ProbePhase::kSelfLoop)) {
    throw snapshot::SnapshotError("snapshot: unknown probe phase");
  }
  probe_phase_ = static_cast<ProbePhase>(probe_phase);
  probe_waveform_ = r.samples("probe_waveform");
  probe_amplitude_ = r.f64("probe_amplitude");
  probe_due_ = r.boolean("probe_due");
  last_probe_s_ = r.f64("last_probe_s");

  active_jam_ = r.boolean("active_jam");
  manual_jam_ = r.boolean("manual_jam");
  antidote_enabled_ = r.boolean("antidote_enabled");
  jammed_this_block_ = r.boolean("jammed_this_block");
  active_jam_started_block_ = r.u64("active_jam_started_block");
  quiet_blocks_ = r.u64("quiet_blocks");
  high_power_suspect_ = r.boolean("high_power_suspect");
  passive_windows_.clear();
  const std::uint64_t windows = r.u64("passive_windows");
  for (std::uint64_t i = 0; i < windows; ++i) {
    const std::size_t from = r.u64("from");
    const std::size_t to = r.u64("to");
    passive_windows_.emplace_back(from, to);
  }

  pending_.clear();
  const std::uint64_t pending = r.u64("pending");
  for (std::uint64_t i = 0; i < pending; ++i) {
    pending_.push_back(load_frame(r));
  }
  own_tx_ranges_.clear();
  const std::uint64_t ranges = r.u64("own_tx_ranges");
  for (std::uint64_t i = 0; i < ranges; ++i) {
    const std::size_t from = r.u64("from");
    const std::size_t to = r.u64("to");
    own_tx_ranges_.emplace_back(from, to);
  }
  transmitted_this_block_ = r.boolean("transmitted_this_block");
  self_cancel_error_ = r.cx("self_cancel_error");

  noise_floor_mw_ = r.f64("noise_floor_mw");
  last_block_power_ = r.f64("last_block_power");
  imd_rssi_mw_ = r.f64("imd_rssi_mw");
  const bool have_override = r.boolean("have_jam_override");
  const double override_dbm = r.f64("jam_override_dbm");
  jam_power_override_dbm_ =
      have_override ? std::optional<double>(override_dbm) : std::nullopt;
  sid_checked_bits_ = r.u64("sid_checked_bits");
  current_lock_start_ = r.u64("current_lock_start");
  current_lock_peak_power_ = r.f64("current_lock_peak_power");

  decoded_replies_.clear();
  const std::uint64_t replies = r.u64("decoded_replies");
  for (std::uint64_t i = 0; i < replies; ++i) {
    decoded_replies_.push_back(phy::load_received_frame(r));
  }
  capture_frames_ = r.boolean("capture_frames");
  captured_frames_.clear();
  const std::uint64_t captured = r.u64("captured_frames");
  for (std::uint64_t i = 0; i < captured; ++i) {
    captured_frames_.push_back(phy::load_received_frame(r));
  }

  stats_.commands_relayed = r.u64("stats.commands_relayed");
  stats_.replies_decoded = r.u64("stats.replies_decoded");
  stats_.reply_crc_failures = r.u64("stats.reply_crc_failures");
  stats_.passive_jams = r.u64("stats.passive_jams");
  stats_.active_jams = r.u64("stats.active_jams");
  stats_.alarms = r.u64("stats.alarms");
  stats_.aborted_tx = r.u64("stats.aborted_tx");
  stats_.probes = r.u64("stats.probes");
  stats_.cross_traffic_ignored = r.u64("stats.cross_traffic_ignored");

  // No trailing set_power here: the generator's live power (including the
  // emit_jam 5% tracking dead-band) was captured inside jamgen's state.
  r.end("shield");
}

double ShieldNode::measured_imd_rssi_dbm() const {
  return imd_rssi_mw_ > 0.0 ? dsp::mw_to_dbm(imd_rssi_mw_)
                            : config_.initial_imd_rssi_dbm;
}

double ShieldNode::jam_power_dbm() const {
  if (jam_power_override_dbm_) return *jam_power_override_dbm_;
  return std::min(config_.max_tx_power_dbm,
                  measured_imd_rssi_dbm() + config_.jam_margin_db);
}

void ShieldNode::set_jam_power_override(std::optional<double> dbm) {
  jam_power_override_dbm_ = dbm;
  jamgen_.set_power(dsp::dbm_to_mw(jam_power_dbm()));
}

void ShieldNode::relay_command(const phy::Frame& frame) {
  // Queue; released by produce() at the next idle block.
  pending_.push_back(frame);
  ++stats_.commands_relayed;
}

std::vector<phy::ReceivedFrame> ShieldNode::take_decoded_replies() {
  std::vector<phy::ReceivedFrame> out;
  out.swap(decoded_replies_);
  return out;
}

bool ShieldNode::relay_busy() const {
  return !pending_.empty() || !tx_.empty();
}

double ShieldNode::idle_threshold() const {
  double floor = noise_floor_mw_;
  if (jammed_this_block_) {
    // Predicted residual of our own jamming after antidote cancellation,
    // using a conservative nominal cancellation figure.
    const double residual =
        dsp::dbm_to_mw(jam_power_dbm() - config_.jam_rec_coupling_db -
                       config_.nominal_cancellation_db);
    floor = std::max(floor, residual + noise_floor_mw_);
  }
  return config_.idle_factor * floor;
}

double ShieldNode::self_residual_threshold() const {
  // Expected self-interference after digital cancellation: the analog
  // error (1 + eps), eps ~ CN(0, sigma^2), leaves |eps|^2 of the self-loop
  // power. |eps|^2 is exponential, so 8x its mean keeps the false-abort
  // probability of our own transmissions near e^-8.
  const double self_rx =
      dsp::dbm_to_mw(config_.max_tx_power_dbm - config_.self_coupling_db);
  const double sigma2 =
      config_.hardware_error_sigma * config_.hardware_error_sigma;
  return 8.0 * self_rx * sigma2 + config_.idle_factor * noise_floor_mw_;
}

bool ShieldNode::in_passive_window(std::size_t block_start,
                                   std::size_t block_end) const {
  for (const auto& [from, to] : passive_windows_) {
    if (block_start < to && block_end > from) return true;
  }
  return false;
}

void ShieldNode::prune_windows(std::size_t before_sample) {
  std::erase_if(passive_windows_, [before_sample](const auto& w) {
    return w.second <= before_sample;
  });
}

void ShieldNode::schedule_reply_window(std::size_t signal_end_sample) {
  if (!config_.enable_passive_jamming) return;
  const double fs = config_.fsk.fs;
  // Start slightly before T1 to absorb our own end-of-signal estimate
  // error; run to T2 + P (section 6's jamming algorithm).
  const auto t1 = static_cast<std::size_t>(config_.t1_s * fs);
  const auto t2 = static_cast<std::size_t>(config_.t2_s * fs);
  const auto p = static_cast<std::size_t>(config_.max_packet_s * fs);
  const std::size_t guard = 4 * config_.fsk.sps;
  const std::size_t from =
      signal_end_sample + (t1 > guard ? t1 - guard : 0);
  passive_windows_.emplace_back(from, signal_end_sample + t2 + p);
  ++stats_.passive_jams;
}

void ShieldNode::emit_jam(const sim::StepContext& ctx,
                          channel::Medium& medium) {
  // Keep the jamming power tracking the measured IMD power.
  const double target = dsp::dbm_to_mw(jam_power_dbm());
  if (std::abs(target - jamgen_.power()) > 0.05 * target) {
    jamgen_.set_power(target);
  }
  jamgen_.next(ctx.block_size, jam_block_);
  medium.set_tx(jam_ant_, jam_block_.view());
  if (antidote_enabled_ && antidote_.ready()) {
    const cplx coeff = antidote_.antidote_coefficient();
    const double cr = coeff.real();
    const double ci = coeff.imag();
    antidote_block_.resize(jam_block_.size());
    const double* jr = jam_block_.re();
    const double* ji = jam_block_.im();
    double* ar = antidote_block_.re();
    double* ai = antidote_block_.im();
    for (std::size_t i = 0; i < jam_block_.size(); ++i) {
      ar[i] = cr * jr[i] - ci * ji[i];
      ai[i] = cr * ji[i] + ci * jr[i];
    }
    medium.set_tx(rx_ant_, antidote_block_.view());
  }
  jammed_this_block_ = true;
}

void ShieldNode::produce(const sim::StepContext& ctx,
                         channel::Medium& medium) {
  const std::size_t block_start = ctx.block_start_sample();
  const std::size_t block_end = block_start + ctx.block_size;
  const bool was_jamming = jammed_this_block_;
  jammed_this_block_ = false;
  transmitted_this_block_ = false;

  const bool passive = config_.enable_passive_jamming &&
                       in_passive_window(block_start, block_end);
  const bool want_jam = manual_jam_ || active_jam_ || passive;
  if (want_jam) {
    if (probe_phase_ != ProbePhase::kNone) {
      // Jamming preempts an in-flight probe pair: abandon it (a partial
      // estimate made from a jamming block would corrupt the antidote)
      // and re-probe at the next idle opportunity.
      probe_phase_ = ProbePhase::kNone;
      probe_due_ = true;
    }
    if (!was_jamming && log_ != nullptr) {
      log_->record(ctx.block_start_s(), name_, sim::EventKind::kJamStart,
                   active_jam_ ? "active" : (passive ? "passive" : "manual"));
    }
    emit_jam(ctx, medium);
    return;
  }
  if (was_jamming && log_ != nullptr) {
    log_->record(ctx.block_start_s(), name_, sim::EventKind::kJamEnd, "");
  }

  // Second half of an in-flight probe pair.
  if (probe_phase_ == ProbePhase::kSelfLoop) {
    Samples probe(probe_waveform_.size());
    for (std::size_t i = 0; i < probe.size(); ++i) {
      probe[i] = probe_waveform_[i] * probe_amplitude_;
    }
    medium.set_tx(rx_ant_, probe);
    return;
  }

  // Periodic (or forced) channel estimation when otherwise idle. The
  // medium must actually be quiet: a probe taken while someone else is
  // transmitting (e.g., radiosonde cross-traffic 20 dB above the probe)
  // would corrupt the estimates and with them the antidote.
  const bool probe_stale =
      last_probe_s_ < 0.0 ||
      ctx.block_start_s() - last_probe_s_ >= config_.probe_interval_s;
  const bool medium_quiet =
      !monitor_.locked() &&
      last_block_power_ <= config_.idle_factor * noise_floor_mw_;
  if (probe_phase_ == ProbePhase::kNone && (probe_due_ || probe_stale) &&
      tx_.empty() && (medium_quiet || last_probe_s_ < 0.0)) {
    probe_phase_ = ProbePhase::kJamAntenna;
    Samples probe(probe_waveform_.size());
    for (std::size_t i = 0; i < probe.size(); ++i) {
      probe[i] = probe_waveform_[i] * probe_amplitude_;
    }
    medium.set_tx(jam_ant_, probe);
    return;
  }

  // Release a queued relay command (measure channels first if stale —
  // the paper probes "immediately before it transmits to the IMD").
  if (!pending_.empty() && tx_.empty() && antidote_.ready() &&
      probe_phase_ == ProbePhase::kNone) {
    const phy::Frame frame = pending_.front();
    pending_.erase(pending_.begin());
    Samples wave = modulator_.modulate(phy::encode_frame(frame));
    const double amp = std::sqrt(dsp::dbm_to_mw(config_.max_tx_power_dbm));
    for (auto& x : wave) x *= amp;
    const std::size_t end = block_start + wave.size();
    own_tx_ranges_.emplace_back(block_start, end);
    if (own_tx_ranges_.size() > 16) own_tx_ranges_.pop_front();
    tx_.schedule(block_start, std::move(wave));
    schedule_reply_window(end);
    self_cancel_error_ = rng_.cgaussian(config_.hardware_error_sigma *
                                        config_.hardware_error_sigma);
    if (log_ != nullptr) {
      log_->record(ctx.block_start_s(), name_, sim::EventKind::kTxStart,
                   "relayed command");
    }
  }

  if (tx_.fill(block_start, ctx.block_size, own_tx_block_)) {
    medium.set_tx(rx_ant_, own_tx_block_);
    transmitted_this_block_ = true;
  }
}

void ShieldNode::consume(const sim::StepContext& ctx,
                         channel::Medium& medium) {
  // Probe blocks: estimate the channel, then cancel the (now-known) probe
  // contribution out of the received block and keep monitoring the
  // remainder — the shield must not be deaf while probing, or an
  // adversary packet starting during the probe would slip past S_id.
  // Probing is rare, so this path stays on the AoS view; the every-block
  // monitoring path below runs on the medium's split-complex planes.
  if (probe_phase_ == ProbePhase::kJamAntenna ||
      probe_phase_ == ProbePhase::kSelfLoop) {
    const auto rx = medium.rx(rx_ant_);
    Samples ref(probe_waveform_.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ref[i] = probe_waveform_[i] * probe_amplitude_;
    }
    const cplx h = dsp::estimate_flat_channel(
        dsp::SampleView(rx.data(), std::min(rx.size(), ref.size())), ref);
    Samples residual(rx.begin(), rx.end());
    for (std::size_t i = 0; i < ref.size() && i < residual.size(); ++i) {
      residual[i] -= h * ref[i];
    }
    // Sanity gates against probe/foreign-signal collisions, which would
    // poison the antidote: (a) the probed paths are the shield's own
    // hardware, whose couplings are known to within a few dB; (b) after
    // subtracting the estimated probe contribution, the block must be
    // quiet — anything else on the air shows up in that residual no
    // matter how the least-squares estimate came out. On failure the
    // estimate is discarded and the probe retried at the next quiet slot.
    const double nominal_db = probe_phase_ == ProbePhase::kJamAntenna
                                  ? -config_.jam_rec_coupling_db
                                  : -config_.self_coupling_db;
    const double est_db = dsp::amplitude_to_db(std::max(std::abs(h), 1e-12));
    const double residual_power = dsp::mean_power(
        dsp::SampleView(residual.data(), std::min(residual.size(),
                                                  ref.size())));
    const bool plausible = std::abs(est_db - nominal_db) <= 8.0 &&
                           residual_power <= 20.0 * noise_floor_mw_;
    if (std::getenv("HS_SHIELD_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "PROBE t=%.5f phase=%d est=%.1fdB nom=%.1fdB res=%.1fdBm floor=%.1fdBm ok=%d h=(%.4g,%.4g)\n",
                   ctx.block_start_s(), (int)probe_phase_, est_db, nominal_db,
                   dsp::mw_to_dbm(residual_power + 1e-30),
                   dsp::mw_to_dbm(noise_floor_mw_ + 1e-30), (int)plausible,
                   h.real(), h.imag());
    }
    if (!plausible) {
      probe_phase_ = ProbePhase::kNone;
      probe_due_ = true;  // retry at the next quiet opportunity
    } else if (probe_phase_ == ProbePhase::kJamAntenna) {
      antidote_.update_jam_channel(h);
      probe_phase_ = ProbePhase::kSelfLoop;
    } else {
      antidote_.update_self_channel(h);
      antidote_.begin_epoch();
      probe_phase_ = ProbePhase::kNone;
      probe_due_ = false;
      last_probe_s_ = ctx.block_start_s();
      ++stats_.probes;
      if (log_ != nullptr) {
        log_->record(ctx.block_start_s(), name_, sim::EventKind::kProbe,
                     "channel estimation");
      }
    }
    monitor_.push(residual);
    check_sid_mid_packet(ctx, dsp::mean_power(residual));
    handle_monitor_frames(ctx);
    return;
  }

  dsp::SoaView work = medium.rx_soa(rx_ant_);
  if (transmitted_this_block_ && antidote_.ready()) {
    // Digital self-cancellation of our own relayed command, imperfect by
    // the analog accuracy (1 + eps).
    const cplx h =
        antidote_.self_channel() * (cplx(1.0, 0.0) + self_cancel_error_);
    const double hr = h.real();
    const double hi = h.imag();
    work_.assign(work);
    double* wr = work_.re();
    double* wi = work_.im();
    for (std::size_t i = 0; i < work_.size(); ++i) {
      const double tr = own_tx_block_[i].real();
      const double ti = own_tx_block_[i].imag();
      wr[i] -= hr * tr - hi * ti;
      wi[i] -= hr * ti + hi * tr;
    }
    work = work_.view();
  }
  const double block_power = dsp::mean_power(work);

  // Track the quiet-medium noise floor with minimum tracking plus a
  // multiplicative (dB-linear) rise: ~0.09 dB per block upward. A linear
  // EWMA would ratchet to within a few dB of any sustained foreign
  // transmission within milliseconds, fooling the probe's quiet-medium
  // gate; the multiplicative rise keeps a 10 ms radiosonde frame dozens
  // of dB above the floor for its whole duration.
  if (!jammed_this_block_ && !transmitted_this_block_ && !monitor_.locked()) {
    if (block_power < noise_floor_mw_) {
      noise_floor_mw_ = block_power;
    } else {
      noise_floor_mw_ = std::min(noise_floor_mw_ * 1.02, block_power);
    }
    last_block_power_ = block_power;
  } else if (!jammed_this_block_ && !transmitted_this_block_) {
    last_block_power_ = block_power;
  }

  // Anti-capture: anything transmitting over our own command triggers an
  // unconditional switch from transmission to jamming (section 7).
  if (transmitted_this_block_ && config_.enable_active_protection &&
      block_power > self_residual_threshold()) {
    tx_.cancel_all();
    ++stats_.aborted_tx;
    start_active_jam(ctx, block_power, /*from_own_tx=*/true);
  }

  monitor_.push(work);
  check_sid_mid_packet(ctx, block_power);
  handle_monitor_frames(ctx);

  // Active jamming continues until the medium goes idle again.
  if (active_jam_) {
    if (std::getenv("HS_SHIELD_DEBUG") != nullptr) {
      std::fprintf(stderr, "AJ t=%.5f p=%.1fdBm thr=%.1fdBm quiet=%zu lock=%d\n",
                   ctx.block_start_s(), dsp::mw_to_dbm(block_power + 1e-30),
                   dsp::mw_to_dbm(idle_threshold() + 1e-30), quiet_blocks_,
                   (int)monitor_.locked());
    }
    if (block_power < idle_threshold()) {
      ++quiet_blocks_;
    } else {
      quiet_blocks_ = 0;
    }
    const bool min_elapsed =
        ctx.block_index - active_jam_started_block_ >=
        config_.min_active_jam_blocks;
    if (min_elapsed && quiet_blocks_ >= config_.idle_confirm_blocks) {
      stop_active_jam(ctx);
    }
  }
  prune_windows(ctx.block_start_sample());
}

void ShieldNode::start_active_jam(const sim::StepContext& ctx,
                                  double trigger_rssi, bool from_own_tx) {
  if (active_jam_) return;
  active_jam_ = true;
  active_jam_started_block_ = ctx.block_index;
  quiet_blocks_ = 0;
  ++stats_.active_jams;
  high_power_suspect_ =
      trigger_rssi > dsp::dbm_to_mw(config_.pthresh_dbm);
  if (log_ != nullptr) {
    log_->record(ctx.block_start_s(), name_, sim::EventKind::kJamStart,
                 from_own_tx ? "concurrent-with-own-tx" : "sid-match");
  }
  if (config_.alarm_enabled && high_power_suspect_) {
    ++stats_.alarms;
    if (log_ != nullptr) {
      log_->record(ctx.block_start_s(), name_, sim::EventKind::kAlarm,
                   "high-powered adversarial transmission");
    }
  }
}

void ShieldNode::stop_active_jam(const sim::StepContext& ctx) {
  active_jam_ = false;
  if (log_ != nullptr) {
    log_->record(ctx.block_start_s(), name_, sim::EventKind::kJamEnd,
                 "medium idle");
  }
  if (high_power_suspect_) {
    // The command may have reached the IMD despite jamming; jam the reply
    // window as if the message had been our own (section 7(d)).
    const std::size_t end_estimate =
        ctx.block_start_sample() -
        std::min(ctx.block_start_sample(),
                 quiet_blocks_ * ctx.block_size);
    schedule_reply_window(end_estimate);
  }
  high_power_suspect_ = false;
}

void ShieldNode::check_sid_mid_packet(const sim::StepContext& ctx,
                                      double block_power) {
  if (!config_.enable_active_protection) return;
  if (!monitor_.locked()) return;
  if (monitor_.lock_start_sample() != current_lock_start_) {
    current_lock_start_ = monitor_.lock_start_sample();
    sid_checked_bits_ = 0;
    current_lock_peak_power_ = 0.0;
    sid_.reset();
  }
  current_lock_peak_power_ = std::max(current_lock_peak_power_, block_power);

  // Our own relayed command also matches S_id; never jam ourselves.
  for (const auto& [from, to] : own_tx_ranges_) {
    if (current_lock_start_ >= from && current_lock_start_ < to) return;
  }

  const auto& bits = monitor_.partial_bits();
  bool matched = false;
  for (std::size_t i = sid_checked_bits_; i < bits.size(); ++i) {
    matched = sid_.push(bits[i]) || matched;
  }
  sid_checked_bits_ = bits.size();
  if (matched && !active_jam_ && !manual_jam_) {
    start_active_jam(ctx, current_lock_peak_power_, /*from_own_tx=*/false);
  }
}

void ShieldNode::handle_monitor_frames(const sim::StepContext& ctx) {
  while (auto frame = monitor_.pop()) {
    bool ours = false;
    for (const auto& [from, to] : own_tx_ranges_) {
      if (frame->start_sample >= from && frame->start_sample < to) {
        ours = true;
        break;
      }
    }
    if (ours) continue;
    if (capture_frames_) captured_frames_.push_back(*frame);

    const bool was_window =
        in_passive_window(frame->start_sample,
                          frame->start_sample +
                              frame->raw_bits.size() * config_.fsk.sps);
    if (frame->decode.status == phy::DecodeStatus::kOk) {
      const phy::Frame& f = frame->decode.frame;
      if (f.device_id == config_.protected_id && (f.type & 0x80) != 0) {
        // The protected IMD's reply, decoded through our own jamming.
        imd_rssi_mw_ = imd_rssi_mw_ > 0.0
                           ? 0.8 * imd_rssi_mw_ + 0.2 * frame->rssi
                           : frame->rssi;
        ++stats_.replies_decoded;
        if (log_ != nullptr) {
          log_->record(ctx.block_start_s(), name_,
                       sim::EventKind::kFrameReceived, "imd reply");
        }
        decoded_replies_.push_back(std::move(*frame));
        continue;
      }
      // Some other frame that completed without triggering S_id jamming:
      // legitimate co-band traffic we correctly ignored.
      if (!sid_.fired()) ++stats_.cross_traffic_ignored;
    } else if (was_window && f_is_reply_window_failure(*frame)) {
      ++stats_.reply_crc_failures;
    }
  }
}

std::vector<phy::ReceivedFrame> ShieldNode::take_monitor_frames() {
  std::vector<phy::ReceivedFrame> out;
  out.swap(captured_frames_);
  return out;
}

bool ShieldNode::f_is_reply_window_failure(const phy::ReceivedFrame& frame) {
  return frame.decode.status == phy::DecodeStatus::kBadCrc ||
         frame.decode.status == phy::DecodeStatus::kTruncated;
}

}  // namespace hs::shield
