#include "serve/protocol.hpp"

#include <cinttypes>
#include <cstdio>

#include "campaign/report.hpp"

namespace hs::serve {

namespace {

using campaign::json_escape;

/// Minimal JSON scanner for request lines: objects, strings, unsigned
/// integers and booleans — the whole request grammar. Tolerant of key
/// order and whitespace (clients serialize with stock JSON libraries),
/// strict about everything else: duplicate keys, unknown keys, wrong
/// value types, trailing bytes and unsupported JSON (floats, arrays,
/// null, nested objects outside "overrides") all throw ProtocolError.
class JsonScanner {
 public:
  explicit JsonScanner(std::string_view s) : s_(s) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw ProtocolError("request: " + what + " (byte " +
                        std::to_string(pos_) + ")");
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of request");
    return s_[pos_];
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          default: fail("unsupported string escape");
        }
      }
      out += c;
    }
  }

  std::uint64_t parse_u64() {
    skip_ws();
    const std::size_t begin = pos_;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') ++pos_;
    if (pos_ == begin) fail("expected a non-negative integer");
    if (pos_ < s_.size() &&
        (s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      fail("expected an integer, not a float");
    }
    if (pos_ - begin > 20) fail("integer does not fit in 64 bits");
    std::uint64_t v = 0;
    for (std::size_t i = begin; i < pos_; ++i) {
      const std::uint64_t digit = static_cast<std::uint64_t>(s_[i] - '0');
      if (v > (UINT64_MAX - digit) / 10) {
        fail("integer does not fit in 64 bits");
      }
      v = v * 10 + digit;
    }
    return v;
  }

  bool parse_bool() {
    skip_ws();
    if (s_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (s_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return false;
    }
    fail("expected true or false");
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Request parse_request(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    throw ProtocolError("request: line exceeds " +
                        std::to_string(kMaxRequestBytes) + " bytes");
  }
  JsonScanner sc(line);
  Request req;
  std::string cmd;
  bool have_cmd = false, have_preset = false, have_id = false;
  bool have_seed = false, have_trials = false, have_chunk_size = false;
  bool have_priority = false, have_overrides = false;

  sc.expect('{');
  if (!sc.consume('}')) {
    for (;;) {
      const std::string key = sc.parse_string();
      sc.expect(':');
      const auto once = [&sc, &key](bool& seen) {
        if (seen) sc.fail("duplicate key '" + key + "'");
        seen = true;
      };
      if (key == "cmd") {
        once(have_cmd);
        cmd = sc.parse_string();
      } else if (key == "preset") {
        once(have_preset);
        req.run.preset = sc.parse_string();
      } else if (key == "seed") {
        once(have_seed);
        req.run.seed = sc.parse_u64();
      } else if (key == "trials") {
        once(have_trials);
        req.run.trials = static_cast<std::size_t>(sc.parse_u64());
      } else if (key == "chunk_size") {
        once(have_chunk_size);
        req.run.chunk_size = static_cast<std::size_t>(sc.parse_u64());
      } else if (key == "priority") {
        once(have_priority);
        const std::uint64_t p = sc.parse_u64();
        if (p < kMinPriority || p > kMaxPriority) {
          sc.fail("priority must be in [" + std::to_string(kMinPriority) +
                  ", " + std::to_string(kMaxPriority) + "]");
        }
        req.run.priority = static_cast<unsigned>(p);
      } else if (key == "overrides") {
        once(have_overrides);
        sc.expect('{');
        if (!sc.consume('}')) {
          bool have_reuse = false, have_snapshots = false;
          for (;;) {
            const std::string okey = sc.parse_string();
            sc.expect(':');
            if (okey == "reuse") {
              if (have_reuse) sc.fail("duplicate override 'reuse'");
              have_reuse = true;
              req.run.reuse = sc.parse_bool();
            } else if (okey == "snapshots") {
              if (have_snapshots) sc.fail("duplicate override 'snapshots'");
              have_snapshots = true;
              req.run.snapshots = sc.parse_bool();
            } else {
              // Only execution-shaping knobs that cannot change report
              // bytes are overridable; reject the rest loudly so a
              // client cannot believe it changed something it did not.
              sc.fail("unknown override '" + okey +
                      "' (allowed: reuse, snapshots)");
            }
            if (sc.consume(',')) continue;
            sc.expect('}');
            break;
          }
        }
      } else if (key == "id") {
        once(have_id);
        req.cancel_id = sc.parse_u64();
      } else {
        sc.fail("unknown key '" + key + "'");
      }
      if (sc.consume(',')) continue;
      sc.expect('}');
      break;
    }
  }
  if (!sc.at_end()) sc.fail("trailing bytes after request object");
  if (!have_cmd) throw ProtocolError("request: missing 'cmd'");

  const bool run_keys = have_preset || have_seed || have_trials ||
                        have_chunk_size || have_priority || have_overrides;
  if (cmd == "run") {
    req.kind = RequestKind::kRun;
    if (!have_preset || req.run.preset.empty()) {
      throw ProtocolError("request: run needs a non-empty 'preset'");
    }
    if (have_chunk_size && req.run.chunk_size == 0) {
      throw ProtocolError("request: chunk_size must be >= 1");
    }
    if (req.run.trials > 100000000) {
      throw ProtocolError("request: trials too large (max 100000000)");
    }
    if (have_id) throw ProtocolError("request: 'id' is not valid for run");
  } else if (cmd == "cancel") {
    req.kind = RequestKind::kCancel;
    if (!have_id) throw ProtocolError("request: cancel needs 'id'");
    if (run_keys) {
      throw ProtocolError("request: run-only keys are not valid for cancel");
    }
  } else if (cmd == "stats" || cmd == "ping") {
    req.kind = cmd == "stats" ? RequestKind::kStats : RequestKind::kPing;
    if (run_keys || have_id) {
      throw ProtocolError("request: extra keys are not valid for '" + cmd +
                          "'");
    }
  } else {
    throw ProtocolError("request: unknown cmd '" + cmd + "'");
  }
  return req;
}

std::string admitted_line(std::uint64_t id, std::string_view preset,
                          std::size_t total_chunks,
                          std::size_t queue_depth) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"admitted\",\"id\":%" PRIu64
                ",\"preset\":\"%s\",\"total_chunks\":%zu,"
                "\"queue_depth\":%zu}",
                id, json_escape(preset).c_str(), total_chunks, queue_depth);
  return buf;
}

std::string rejected_line(std::uint64_t retry_after_ms,
                          std::string_view reason) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"rejected\",\"code\":429,\"retry_after_ms\":%" PRIu64
                ",\"reason\":\"%s\"}",
                retry_after_ms, json_escape(reason).c_str());
  return buf;
}

std::string error_line(std::string_view reason) {
  return "{\"type\":\"error\",\"reason\":\"" + json_escape(reason) + "\"}";
}

std::string framed_line(std::string_view type, std::uint64_t id,
                        std::string_view v3_line) {
  std::string out = "{\"type\":\"";
  out += type;
  out += "\",\"id\":";
  out += std::to_string(id);
  out += ",\"line\":\"";
  out += json_escape(v3_line);
  out += "\"}";
  return out;
}

std::string report_line(std::uint64_t id, std::string_view csv,
                        std::string_view json) {
  std::string out = "{\"type\":\"report\",\"id\":";
  out += std::to_string(id);
  out += ",\"csv\":\"";
  out += json_escape(csv);
  out += "\",\"json\":\"";
  out += json_escape(json);
  out += "\"}";
  return out;
}

std::string done_line(std::uint64_t id, std::size_t chunks, double wall_ms,
                      double queue_wait_ms) {
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"done\",\"id\":%" PRIu64
                ",\"chunks\":%zu,\"wall_ms\":%.3f,\"queue_wait_ms\":%.3f}",
                id, chunks, wall_ms, queue_wait_ms);
  return buf;
}

std::string cancelled_line(std::uint64_t id, std::size_t chunks_completed) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"cancelled\",\"id\":%" PRIu64
                ",\"chunks_completed\":%zu}",
                id, chunks_completed);
  return buf;
}

std::string pong_line() { return "{\"type\":\"pong\"}"; }

std::string stats_line(const obs::ServiceStatsSnapshot& s) {
  const auto lat = [](const obs::LatencyWindow::Percentiles& p) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"count\":%" PRIu64
                  ",\"p50_ms\":%.3f,\"p90_ms\":%.3f,\"p99_ms\":%.3f,"
                  "\"max_ms\":%.3f}",
                  p.count, p.p50, p.p90, p.p99, p.max);
    return std::string(buf);
  };
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"type\":\"stats\",\"requests_admitted\":%" PRIu64
                ",\"requests_rejected\":%" PRIu64
                ",\"requests_cancelled\":%" PRIu64
                ",\"requests_completed\":%" PRIu64
                ",\"chunks_executed\":%" PRIu64
                ",\"queue_depth\":%zu,\"active_requests\":%zu",
                s.requests_admitted, s.requests_rejected,
                s.requests_cancelled, s.requests_completed,
                s.chunks_executed, s.queue_depth, s.active_requests);
  std::string out = buf;
  out += ",\"wall\":";
  out += lat(s.wall_ms);
  out += ",\"queue_wait\":";
  out += lat(s.queue_wait_ms);
  out += "}";
  return out;
}

}  // namespace hs::serve
