/// @file
/// campaign_serverd's connection layer: a line-delimited JSON protocol
/// (serve/protocol.hpp) over a local stream socket — TCP on 127.0.0.1 or
/// a Unix-domain socket — in front of the session-scoped Scheduler.
///
/// Request lifecycle (the data flow docs/ARCHITECTURE.md narrates):
///
///   reader thread          scheduler worker            client socket
///   ------------------     ------------------------    -------------
///   parse_request
///   find_scenario
///   Scheduler::submit  --> admitted? ------------- no: rejected_line
///        |                                         yes: admitted_line
///        |                                              header frame
///   Scheduler::start   --> run_chunk per chunk  ---->  chunk frames
///                          last chunk delivered ---->  trailer frame
///                          assemble_result       ---->  report_line
///                                                       done_line
///
/// One reader thread per connection; a shared per-connection writer
/// (mutex-serialized, MSG_NOSIGNAL, dead-latch on EPIPE) is the only
/// thing scheduler callbacks touch, so a client that disconnects
/// mid-stream never takes a worker down — its remaining frames are
/// dropped and its in-flight requests cancelled.
///
/// Shutdown: shutdown() only write()s one byte to a self-pipe
/// (async-signal-safe — the SIGTERM handler may call it directly). run()
/// then stops accepting, drains the scheduler (admitted requests finish
/// streaming), and closes every connection.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/service_stats.hpp"
#include "serve/scheduler.hpp"

namespace hs::serve {

struct ServerOptions {
  /// Non-empty binds a Unix-domain socket at this path (an existing
  /// socket file is replaced). Takes precedence over TCP.
  std::string unix_path;
  /// TCP port on 127.0.0.1 (0 = ephemeral; read bound_port() after
  /// start()). Used only when unix_path is empty.
  std::uint16_t tcp_port = 0;
  SchedulerOptions scheduler;
};

class Server {
 public:
  Server(ServerOptions options, obs::ServiceStats* stats);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. Throws std::runtime_error on socket failures.
  void start();

  /// The TCP port actually bound (resolves tcp_port == 0). 0 for Unix.
  std::uint16_t bound_port() const { return bound_port_; }

  /// Serves until shutdown(): accepts connections, spawns one reader
  /// thread each. On shutdown it stops accepting, drains the scheduler
  /// (every admitted request completes and streams out), then closes
  /// all connections and joins the readers.
  void run();

  /// Requests graceful termination of run(). Only write()s to the
  /// self-pipe — safe to call from a signal handler or any thread.
  void shutdown();

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(std::shared_ptr<Connection> conn);
  void handle_line(const std::shared_ptr<Connection>& conn,
                   std::string_view line);
  void handle_run(const std::shared_ptr<Connection>& conn,
                  const RunRequest& request);

  ServerOptions options_;
  obs::ServiceStats* stats_;
  Scheduler scheduler_;

  int listen_fd_ = -1;
  int wake_rd_ = -1;  ///< self-pipe read end (poll'd beside listen_fd_)
  int wake_wr_ = -1;  ///< self-pipe write end (shutdown() writes here)
  std::uint16_t bound_port_ = 0;
  std::string bound_unix_path_;  ///< unlinked on close

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Connection>> conns_;
  std::vector<std::thread> reader_threads_;
  bool stopping_ = false;  ///< guarded by conns_mutex_
};

}  // namespace hs::serve
