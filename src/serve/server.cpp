#include "serve/server.hpp"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <set>
#include <stdexcept>

#include "campaign/report.hpp"
#include "campaign/scenario.hpp"

namespace hs::serve {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

/// Per-client state. The write side is shared between the reader thread
/// and scheduler workers: `mutex` serializes whole lines, `dead` latches
/// on the first short/failed write so every later frame is dropped
/// instead of blocking a worker on a gone client.
struct Server::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  /// Writes `line` + '\n'. Returns false (and latches dead) on failure.
  bool write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex);
    if (dead) return false;
    std::string framed = line;
    framed += '\n';
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        dead = true;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  void add_owned(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex);
    owned.insert(id);
  }

  void remove_owned(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex);
    owned.erase(id);
  }

  std::vector<std::uint64_t> take_owned() {
    std::lock_guard<std::mutex> lock(mutex);
    std::vector<std::uint64_t> ids(owned.begin(), owned.end());
    owned.clear();
    return ids;
  }

  const int fd;
  std::mutex mutex;
  bool dead = false;              ///< guarded by mutex
  std::set<std::uint64_t> owned;  ///< live request ids; guarded by mutex
};

Server::Server(ServerOptions options, obs::ServiceStats* stats)
    : options_(std::move(options)),
      stats_(stats),
      scheduler_(options_.scheduler, stats) {}

Server::~Server() {
  scheduler_.stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
  if (!bound_unix_path_.empty()) ::unlink(bound_unix_path_.c_str());
}

void Server::start() {
  int pipefd[2];
  if (::pipe(pipefd) != 0) throw_errno("pipe");
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];

  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("unix socket path too long: " +
                               options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket(AF_UNIX)");
    ::unlink(options_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind(unix)");
    }
    bound_unix_path_ = options_.unix_path;
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcp_port);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind(tcp)");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      throw_errno("getsockname");
    }
    bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 16) != 0) throw_errno("listen");
}

void Server::shutdown() {
  if (wake_wr_ >= 0) {
    const char byte = 'q';
    // Best-effort, async-signal-safe: a full pipe already means a wake
    // byte is pending.
    [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &byte, 1);
  }
}

void Server::run() {
  accept_loop();

  // Graceful drain: no new connections or admissions; every admitted
  // request runs to completion and streams its frames before we close.
  scheduler_.drain();

  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    stopping_ = true;
    conns = conns_;
  }
  for (const auto& conn : conns) {
    ::shutdown(conn->fd, SHUT_RDWR);  // wakes the reader out of poll/read
  }
  for (auto& t : reader_threads_) {
    if (t.joinable()) t.join();
  }
  scheduler_.stop();
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_rd_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll(accept)");
    }
    if (fds[1].revents != 0) return;  // shutdown() woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept");
    }
    // Bound writes so a client that stops reading mid-stream latches the
    // connection dead instead of wedging a scheduler worker (and drain).
    timeval send_timeout{30, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
                 sizeof(send_timeout));
    auto conn = std::make_shared<Connection>(fd);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    if (stopping_) continue;  // fd closes via conn's destructor
    conns_.push_back(conn);
    reader_threads_.emplace_back(
        [this, conn] { reader_loop(std::move(conn)); });
  }
}

void Server::reader_loop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  bool protocol_abort = false;
  for (;;) {
    // The 200 ms tick bounds how long a reader lingers after run()
    // calls ::shutdown() on the fd (poll then reports POLLHUP).
    pollfd pfd{conn->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      if (stopping_) break;
    }
    if (rc == 0) continue;
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // EOF or error: client is gone
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!line.empty()) handle_line(conn, line);
      start = nl + 1;
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxRequestBytes) {
      // An unterminated line past the request cap is a protocol
      // violation; answer once and drop the connection before the
      // buffer grows unbounded.
      conn->write_line(error_line("request line exceeds " +
                                  std::to_string(kMaxRequestBytes) +
                                  " bytes"));
      protocol_abort = true;
      break;
    }
  }

  // Whatever this client still had running is abandoned work.
  for (const std::uint64_t id : conn->take_owned()) {
    scheduler_.cancel(id);
  }
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->dead = true;
  }
  if (protocol_abort) ::shutdown(conn->fd, SHUT_RDWR);
}

void Server::handle_line(const std::shared_ptr<Connection>& conn,
                         std::string_view line) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const ProtocolError& e) {
    conn->write_line(error_line(e.what()));
    return;
  }
  switch (req.kind) {
    case RequestKind::kPing:
      conn->write_line(pong_line());
      return;
    case RequestKind::kStats:
      conn->write_line(stats_line(stats_->snapshot()));
      return;
    case RequestKind::kCancel:
      if (!scheduler_.cancel(req.cancel_id)) {
        conn->write_line(error_line("cancel: unknown or finished id " +
                                    std::to_string(req.cancel_id)));
      }
      // The cancelled_line arrives via on_cancelled.
      return;
    case RequestKind::kRun:
      handle_run(conn, req.run);
      return;
  }
}

void Server::handle_run(const std::shared_ptr<Connection>& conn,
                        const RunRequest& request) {
  const campaign::Scenario* scenario = campaign::find_scenario(request.preset);
  if (scenario == nullptr) {
    conn->write_line(error_line("unknown preset '" + request.preset + "'"));
    return;
  }

  Scheduler::Callbacks callbacks;
  callbacks.on_record = [conn](std::uint64_t id, const std::string& record) {
    conn->write_line(framed_line("chunk", id, record));
  };
  callbacks.on_complete = [conn](std::uint64_t id, const std::string& trailer,
                                 const campaign::CampaignResult& result,
                                 double wall_ms, double queue_wait_ms,
                                 std::size_t chunks) {
    conn->write_line(framed_line("trailer", id, trailer));
    conn->write_line(
        report_line(id, campaign::to_csv(result), campaign::to_json(result)));
    conn->write_line(done_line(id, chunks, wall_ms, queue_wait_ms));
    conn->remove_owned(id);
  };
  callbacks.on_cancelled = [conn](std::uint64_t id,
                                  std::size_t chunks_completed) {
    conn->write_line(cancelled_line(id, chunks_completed));
    conn->remove_owned(id);
  };

  const Admission adm =
      scheduler_.submit(*scenario, request, std::move(callbacks));
  if (!adm.admitted) {
    conn->write_line(rejected_line(adm.retry_after_ms, adm.reason));
    return;
  }
  // Wire-order guarantee: admitted and header frames go out before
  // start() releases the request — no worker can emit a chunk frame
  // first.
  conn->add_owned(adm.id);
  conn->write_line(
      admitted_line(adm.id, request.preset, adm.total_chunks, adm.queue_depth));
  conn->write_line(framed_line("header", adm.id, adm.header_line));
  scheduler_.start(adm.id);
}

}  // namespace hs::serve
