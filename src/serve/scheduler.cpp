#include "serve/scheduler.hpp"

#include <algorithm>

#include "campaign/chunk_stream.hpp"
#include "campaign/report.hpp"
#include "campaign/shard.hpp"
#include "shield/trial_context.hpp"

namespace hs::serve {

namespace {

/// Stride-scheduling scale: lcm(1..8), so every priority in
/// [kMinPriority, kMaxPriority] gets an exact integer stride and chunk
/// slots are apportioned in exact priority ratios.
constexpr std::uint64_t kStrideScale = 840;

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

}  // namespace

struct Scheduler::RequestState {
  std::uint64_t id = 0;
  campaign::Scenario scenario;
  campaign::CampaignOptions options;
  campaign::ShardPlan plan;
  std::uint64_t warm_seed = 0;
  Callbacks callbacks;
  std::uint64_t stride = kStrideScale;
  std::uint64_t vtime = 0;
  bool ready = false;      ///< start() called; schedulable
  bool active = false;     ///< holds a weighted-fair slot
  bool cancelled = false;
  bool finished = false;   ///< terminal callback emitted or claimed
  std::size_t next_chunk = 0;
  std::size_t in_flight = 0;
  std::size_t completed = 0;
  std::size_t delivered = 0;
  std::vector<std::array<campaign::StreamingStats, campaign::kMetricCount>>
      chunk_metrics;
  // steady_clock is allowlisted for this file in LINT.toml: request
  // latency timing is service observability, never trial input.
  std::chrono::steady_clock::time_point admitted_at;
  std::chrono::steady_clock::time_point scheduled_at;
  bool scheduled_stamped = false;
  /// Serializes callback delivery for this request (workers finishing
  /// different chunks of the same request would otherwise interleave).
  std::mutex emit_mutex;
};

Scheduler::Scheduler(SchedulerOptions options, obs::ServiceStats* stats)
    : options_(options), stats_(stats), cache_(options.snapshot_dir) {
  unsigned workers = options_.workers > 0
                         ? options_.workers
                         : std::max(1u, std::thread::hardware_concurrency());
  options_.workers = workers;
  options_.max_active = std::max<std::size_t>(options_.max_active, 1);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() { stop(); }

Admission Scheduler::submit(const campaign::Scenario& scenario,
                            const RunRequest& request, Callbacks callbacks) {
  auto state = std::make_shared<RequestState>();
  state->scenario = scenario;
  state->options.seed = request.seed;
  state->options.trials_per_point = request.trials;
  state->options.chunk_size = std::max<std::size_t>(request.chunk_size, 1);
  state->options.threads = 1;
  state->options.reuse_deployments = request.reuse;
  state->options.snapshots = request.snapshots;
  state->plan = campaign::plan_shard(scenario, state->options, 1, 0);
  state->warm_seed =
      campaign::campaign_warmup_seed(request.seed, scenario.name);
  state->callbacks = std::move(callbacks);
  state->stride = kStrideScale / std::clamp<std::uint64_t>(
                                     request.priority, kMinPriority,
                                     kMaxPriority);
  state->chunk_metrics.resize(state->plan.chunks.size());

  Admission adm;
  adm.total_chunks = state->plan.chunks.size();

  std::lock_guard<std::mutex> lock(mutex_);
  if (draining_ || stopping_) {
    adm.reason = "server is draining";
    adm.retry_after_ms = 0;  // do not come back; the daemon is going away
    stats_->on_rejected();
    return adm;
  }
  if (active_count_ >= options_.max_active &&
      pending_.size() >= options_.max_queue) {
    adm.reason = "admission queue full";
    adm.retry_after_ms = estimate_retry_ms_locked();
    stats_->on_rejected();
    return adm;
  }

  state->id = next_id_++;
  state->admitted_at = std::chrono::steady_clock::now();
  requests_.emplace(state->id, state);
  if (active_count_ < options_.max_active) {
    state->active = true;
    state->vtime = global_vtime_;
    ++active_count_;
  } else {
    pending_.push_back(state->id);
  }

  adm.admitted = true;
  adm.id = state->id;
  adm.queue_depth = pending_.size();
  adm.header_line =
      campaign::serialize_stream_header(scenario, state->options, state->plan);
  stats_->on_admitted();
  stats_->set_queue_depth(pending_.size());
  stats_->set_active_requests(active_count_);
  return adm;
}

void Scheduler::start(std::uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = requests_.find(id);
    if (it == requests_.end()) return;  // cancelled before release
    it->second->ready = true;
  }
  cv_work_.notify_all();
}

bool Scheduler::cancel(std::uint64_t id) {
  std::shared_ptr<RequestState> req;
  std::size_t done = 0;
  bool emit_now = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = requests_.find(id);
    if (it == requests_.end() || it->second->finished) return false;
    req = it->second;
    req->cancelled = true;
    done = req->completed;
    if (req->in_flight == 0) {
      // Nothing executing: retire immediately. Otherwise the last worker
      // to finish one of its in-flight chunks emits on_cancelled.
      req->finished = true;
      emit_now = true;
      ++emitting_;
      retire_locked(req);
    }
    stats_->on_cancelled();
  }
  cv_work_.notify_all();
  if (emit_now) {
    if (req->callbacks.on_cancelled) {
      std::lock_guard<std::mutex> emit(req->emit_mutex);
      req->callbacks.on_cancelled(id, done);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (--emitting_ == 0 && requests_.empty()) cv_idle_.notify_all();
  }
  return true;
}

void Scheduler::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  draining_ = true;
  cv_idle_.wait(lock, [this] {
    return (requests_.empty() && emitting_ == 0) || stopping_;
  });
}

void Scheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Already stopped; workers may be joined (or being joined) by the
      // first caller.
    }
    stopping_ = true;
  }
  cv_work_.notify_all();
  cv_idle_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::size_t Scheduler::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

std::size_t Scheduler::active_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_count_;
}

bool Scheduler::claim_locked(std::shared_ptr<RequestState>* out_req,
                             std::size_t* out_chunk) {
  RequestState* best = nullptr;
  std::shared_ptr<RequestState> best_sp;
  for (const auto& [id, sp] : requests_) {
    RequestState& r = *sp;
    if (!r.active || !r.ready || r.cancelled) continue;
    if (r.next_chunk >= r.plan.chunks.size()) continue;
    if (best == nullptr || r.vtime < best->vtime) {
      best = &r;
      best_sp = sp;
    }
  }
  if (best == nullptr) return false;
  *out_chunk = best->next_chunk++;
  ++best->in_flight;
  if (!best->scheduled_stamped) {
    best->scheduled_stamped = true;
    best->scheduled_at = std::chrono::steady_clock::now();
  }
  global_vtime_ = best->vtime;
  best->vtime += best->stride;
  *out_req = std::move(best_sp);
  return true;
}

void Scheduler::retire_locked(const std::shared_ptr<RequestState>& req) {
  requests_.erase(req->id);
  if (req->active) {
    --active_count_;
    while (active_count_ < options_.max_active && !pending_.empty()) {
      const std::uint64_t id = pending_.front();
      pending_.pop_front();
      auto it = requests_.find(id);
      if (it == requests_.end()) continue;
      it->second->active = true;
      // A promoted request competes from the current virtual time — it
      // neither inherits credit for its wait nor starts in debt.
      it->second->vtime = global_vtime_;
      ++active_count_;
    }
  } else {
    const auto it = std::find(pending_.begin(), pending_.end(), req->id);
    if (it != pending_.end()) pending_.erase(it);
  }
  stats_->set_queue_depth(pending_.size());
  stats_->set_active_requests(active_count_);
  cv_work_.notify_all();
  if (requests_.empty()) cv_idle_.notify_all();
}

std::uint64_t Scheduler::estimate_retry_ms_locked() const {
  std::size_t remaining = 0;
  for (const auto& [id, sp] : requests_) {
    remaining += sp->plan.chunks.size() - sp->completed;
  }
  const double est =
      avg_chunk_ms_ * static_cast<double>(remaining) /
      static_cast<double>(std::max(options_.workers, 1u));
  return static_cast<std::uint64_t>(std::clamp(est, 10.0, 60000.0));
}

campaign::CampaignResult Scheduler::assemble_result(
    const RequestState& req) const {
  campaign::CampaignResult result;
  result.scenario = req.scenario;
  result.options = req.options;
  result.options.trials_per_point = req.plan.trials_per_point;  // resolved
  result.points.resize(req.plan.point_count);
  for (std::size_t p = 0; p < req.plan.point_count; ++p) {
    result.points[p].point_index = p;
    result.points[p].axis_value = req.scenario.axis_value_at(p);
  }
  // The determinism-defining fold: ascending chunk id, exactly like
  // run_campaign and merge_chunk_streams. A 1-shard plan's chunks are
  // already every chunk in ascending id order.
  for (std::size_t c = 0; c < req.plan.chunks.size(); ++c) {
    auto& point = result.points[req.plan.chunks[c].point_index];
    for (std::size_t m = 0; m < campaign::kMetricCount; ++m) {
      point.metrics[m].merge(req.chunk_metrics[c][m]);
    }
  }
  result.total_trials = req.plan.point_count * req.plan.trials_per_point;
  campaign::canonicalize(result);
  return result;
}

void Scheduler::worker_loop() {
  // The resident warm state: one TrialContext per worker, serving chunks
  // of whatever request the fair-share pick hands it; run_chunk
  // re-applies the owning request's warm policy on every chunk.
  shield::TrialContext pool;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    std::shared_ptr<RequestState> req;
    std::size_t chunk_idx = 0;
    cv_work_.wait(lock, [&] {
      return stopping_ || claim_locked(&req, &chunk_idx);
    });
    if (stopping_) return;

    lock.unlock();
    const campaign::ChunkRef& chunk = req->plan.chunks[chunk_idx];
    const auto c0 = std::chrono::steady_clock::now();
    auto metrics = campaign::run_chunk(
        req->scenario, req->options.seed, chunk,
        req->options.reuse_deployments ? &pool : nullptr, req->warm_seed,
        req->options.snapshots ? &cache_ : nullptr);
    const double chunk_ms =
        ms_between(c0, std::chrono::steady_clock::now());
    stats_->on_chunk();

    lock.lock();
    avg_chunk_ms_ = 0.9 * avg_chunk_ms_ + 0.1 * chunk_ms;
    req->chunk_metrics[chunk_idx] = metrics;
    --req->in_flight;
    ++req->completed;
    if (req->cancelled) {
      const std::size_t done = req->completed;
      if (req->in_flight == 0 && !req->finished) {
        req->finished = true;
        ++emitting_;
        retire_locked(req);
        lock.unlock();
        if (req->callbacks.on_cancelled) {
          std::lock_guard<std::mutex> emit(req->emit_mutex);
          req->callbacks.on_cancelled(req->id, done);
        }
        lock.lock();
        if (--emitting_ == 0 && requests_.empty()) cv_idle_.notify_all();
      }
      continue;
    }
    lock.unlock();

    // Deliver this chunk's record before counting it delivered, so the
    // worker that delivers the LAST record is the one that emits the
    // completion — on_complete can never overtake an on_record.
    const std::string record =
        campaign::serialize_chunk_record(chunk, metrics);
    if (req->callbacks.on_record) {
      std::lock_guard<std::mutex> emit(req->emit_mutex);
      req->callbacks.on_record(req->id, record);
    }

    lock.lock();
    ++req->delivered;
    const bool complete =
        !req->cancelled && !req->finished &&
        req->delivered == req->plan.chunks.size();
    double wall_ms = 0.0, queue_wait_ms = 0.0;
    if (complete) {
      req->finished = true;
      const auto now = std::chrono::steady_clock::now();
      wall_ms = ms_between(req->admitted_at, now);
      queue_wait_ms = req->scheduled_stamped
                          ? ms_between(req->admitted_at, req->scheduled_at)
                          : 0.0;
      ++emitting_;
      retire_locked(req);
    }
    if (complete) {
      lock.unlock();
      const campaign::CampaignResult result = assemble_result(*req);
      // The trailer mirrors the shard trailer: run geometry plus the
      // engine counters this scheduler tracks per request (trials and
      // chunks; service workers run obs-detached, so phase timers and
      // pool counters are not collected per request).
      obs::Report report;
      report.counters[static_cast<std::size_t>(obs::Counter::kTrials)] =
          result.total_trials;
      report.counters[static_cast<std::size_t>(obs::Counter::kChunks)] =
          req->plan.chunks.size();
      const std::string trailer = campaign::serialize_metrics_trailer(
          options_.workers, wall_ms / 1e3, report);
      stats_->on_completed(wall_ms, queue_wait_ms);
      if (req->callbacks.on_complete) {
        std::lock_guard<std::mutex> emit(req->emit_mutex);
        req->callbacks.on_complete(req->id, trailer, result, wall_ms,
                                   queue_wait_ms, req->plan.chunks.size());
      }
      lock.lock();
      if (--emitting_ == 0 && requests_.empty()) cv_idle_.notify_all();
    }
  }
}

}  // namespace hs::serve
