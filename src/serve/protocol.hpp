/// @file
/// Line-delimited JSON protocol for campaign_serverd.
///
/// Requests (client -> server), one JSON object per line:
///
///   {"cmd":"run","preset":"fig9-eaves-ber","seed":1,"trials":40,
///    "chunk_size":1,"priority":2,"overrides":{"reuse":true,
///    "snapshots":true}}
///   {"cmd":"cancel","id":7}
///   {"cmd":"stats"}
///   {"cmd":"ping"}
///
/// Only "cmd" (and, for run, "preset") is required. The request parser
/// is deliberately tolerant — any key order, arbitrary whitespace —
/// because clients are external programs (tools/hs_client.py sends
/// json.dumps output); unknown keys and malformed values are still hard
/// errors, never silently ignored. "overrides" accepts only the
/// execution-shaping knobs that provably cannot change report bytes
/// ("reuse", "snapshots") — anything that could alter aggregates (seed,
/// trials, chunk_size) is a first-class field of the request, so the
/// serial CLI command the report must byte-match is derivable from the
/// request alone.
///
/// Responses (server -> client), one JSON object per line, "type"-keyed:
///
///   {"type":"admitted","id":N,"preset":"...","total_chunks":C,
///    "queue_depth":D}             accepted; results will stream
///   {"type":"rejected","code":429,"retry_after_ms":M,"reason":"..."}
///                                 admission queue full — back off
///   {"type":"error","reason":"..."}  malformed request / unknown preset
///   {"type":"header","id":N,"line":"<v3 header line>"}
///   {"type":"chunk","id":N,"line":"<v3 chunk record>"}   (per chunk,
///                                 completion order, NOT sorted by id)
///   {"type":"trailer","id":N,"line":"<v3 metrics trailer>"}
///   {"type":"report","id":N,"csv":"...","json":"..."}  canonical final
///                                 report, byte-identical to the serial
///                                 CLI run of the same request
///   {"type":"done","id":N,"chunks":C,"wall_ms":...,"queue_wait_ms":...}
///   {"type":"cancelled","id":N,"chunks_completed":K}
///   {"type":"stats",...}          see stats_line()
///   {"type":"pong"}
///
/// The "line" payloads of header/chunk/trailer frames are the exact
/// sealed v3 chunk-stream lines (campaign/chunk_stream.hpp), JSON-string
/// escaped; a client that unescapes them, sorts the chunk records by
/// ascending chunk id, and joins header + records + trailer with '\n'
/// holds a stream that `campaign_runner --merge` accepts and folds into
/// the same canonical report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/service_stats.hpp"

namespace hs::serve {

/// Request parse/validation failure; the message is safe to send back
/// verbatim in an error_line().
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Hard cap on one request line (bytes, newline excluded). A legitimate
/// request is < 1 KiB; anything larger is a protocol violation and the
/// connection is dropped before the buffer grows unbounded.
inline constexpr std::size_t kMaxRequestBytes = 16 * 1024;

/// Weighted-fair scheduling weight bounds (see serve/scheduler.hpp).
inline constexpr unsigned kMinPriority = 1;
inline constexpr unsigned kMaxPriority = 8;

struct RunRequest {
  std::string preset;
  std::uint64_t seed = 1;
  std::size_t trials = 0;      ///< 0 = the preset's default_trials
  std::size_t chunk_size = 1;
  unsigned priority = 1;       ///< kMinPriority..kMaxPriority
  bool reuse = true;           ///< overrides.reuse
  bool snapshots = true;       ///< overrides.snapshots
};

enum class RequestKind { kRun, kCancel, kStats, kPing };

struct Request {
  RequestKind kind = RequestKind::kPing;
  RunRequest run;               ///< kind == kRun
  std::uint64_t cancel_id = 0;  ///< kind == kCancel
};

/// Parses one request line. Throws ProtocolError on anything malformed:
/// non-JSON bytes, duplicate or unknown keys, wrong value types,
/// out-of-range priority, zero chunk_size, or an unknown cmd.
Request parse_request(std::string_view line);

// -- response builders (no trailing newline) --------------------------------

std::string admitted_line(std::uint64_t id, std::string_view preset,
                          std::size_t total_chunks, std::size_t queue_depth);
std::string rejected_line(std::uint64_t retry_after_ms,
                          std::string_view reason);
std::string error_line(std::string_view reason);
/// `type` is "header", "chunk" or "trailer"; `v3_line` the sealed
/// chunk-stream line to frame.
std::string framed_line(std::string_view type, std::uint64_t id,
                        std::string_view v3_line);
std::string report_line(std::uint64_t id, std::string_view csv,
                        std::string_view json);
std::string done_line(std::uint64_t id, std::size_t chunks, double wall_ms,
                      double queue_wait_ms);
std::string cancelled_line(std::uint64_t id, std::size_t chunks_completed);
std::string pong_line();
std::string stats_line(const obs::ServiceStatsSnapshot& s);

}  // namespace hs::serve
