/// @file
/// Session-scoped campaign scheduler for campaign_serverd: admission
/// control over a bounded queue, weighted-fair (stride) interleaving of
/// chunks across active requests on a resident worker pool, per-request
/// cancellation, and graceful drain.
///
/// Determinism argument (the service-layer invariant, gtest-enforced by
/// tests/test_serve.cpp): a request's final report depends only on
/// (scenario, seed, trials, chunk_size) — the same chunk plan the serial
/// CLI builds. Workers execute chunks through campaign::run_chunk, whose
/// trial seeds and accumulators are pure functions of (campaign seed,
/// scenario, chunk); each chunk's accumulator is stored by chunk id and
/// the final fold walks ascending chunk ids — exactly run_campaign's
/// merge order. So no matter how requests interleave, how many other
/// campaigns share the pool, which worker (with whatever TrialContext
/// history) runs a chunk, or in what order chunks finish, the assembled
/// canonical report is byte-identical to the serial run. Scheduling
/// policy (priorities, admission, cancellation) decides only WHEN chunks
/// run and whether a report is produced — never its bytes.
///
/// Warm state stays resident across requests: one shield::TrialContext
/// per worker (run_chunk re-applies each request's warm policy per
/// chunk) and one shared snapshot::SnapshotCache, so a new request for
/// an already-warmed configuration skips its warm-up entirely.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "campaign/runner.hpp"
#include "obs/service_stats.hpp"
#include "serve/protocol.hpp"
#include "snapshot/snapshot_cache.hpp"

namespace hs::serve {

struct SchedulerOptions {
  /// Worker threads; 0 uses std::thread::hardware_concurrency().
  unsigned workers = 1;
  /// Requests scheduled concurrently (the weighted-fair set).
  std::size_t max_active = 4;
  /// Admitted requests queued beyond the active set; a submit that finds
  /// the queue full is rejected with a retry-after hint (429-style).
  std::size_t max_queue = 8;
  /// Snapshot directory shared by all workers ("" = in-memory cache).
  std::string snapshot_dir;
};

/// submit()'s admission decision. For admitted requests `header_line`
/// carries the sealed v3 stream header so the caller can frame and send
/// it before releasing the request for scheduling with start().
struct Admission {
  bool admitted = false;
  std::uint64_t id = 0;
  std::size_t total_chunks = 0;
  std::size_t queue_depth = 0;
  std::string header_line;
  std::uint64_t retry_after_ms = 0;  ///< rejection back-off hint
  std::string reason;                ///< rejection reason
};

class Scheduler {
 public:
  /// Result delivery, invoked from worker threads. Per request, calls
  /// are serialized and ordered: every on_record strictly before
  /// on_complete; after a cancellation the single terminal call is
  /// on_cancelled (already-executing chunks may still deliver records
  /// first). Records arrive in completion order, NOT sorted by chunk id.
  struct Callbacks {
    std::function<void(std::uint64_t id, const std::string& record_line)>
        on_record;
    std::function<void(std::uint64_t id, const std::string& trailer_line,
                       const campaign::CampaignResult& result,
                       double wall_ms, double queue_wait_ms,
                       std::size_t chunks)>
        on_complete;
    std::function<void(std::uint64_t id, std::size_t chunks_completed)>
        on_cancelled;
  };

  Scheduler(SchedulerOptions options, obs::ServiceStats* stats);
  ~Scheduler();  // stop()s: in-flight chunks finish, the rest is dropped

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admission decision. An admitted request holds a slot (active or
  /// queued) but is NOT schedulable until start(id) — the caller writes
  /// its admitted + header frames first, so the wire order is always
  /// admitted, header, records. Never invokes callbacks.
  Admission submit(const campaign::Scenario& scenario,
                   const RunRequest& request, Callbacks callbacks);

  /// Releases an admitted request for scheduling.
  void start(std::uint64_t id);

  /// Cancels an admitted request: unstarted chunks are dropped,
  /// in-flight chunks finish and are discarded. on_cancelled fires once
  /// (immediately if nothing is in flight). False if `id` is unknown or
  /// already finished.
  bool cancel(std::uint64_t id);

  /// Graceful drain: stop admitting (submits are rejected), let every
  /// admitted request run to completion, then return. Workers stay
  /// alive; call before destruction for a clean SIGTERM path.
  void drain();

  /// Hard stop: workers exit after their in-flight chunk; undelivered
  /// callbacks are dropped. Idempotent; the destructor calls it.
  void stop();

  std::size_t queue_depth() const;
  std::size_t active_count() const;

 private:
  struct RequestState;

  void worker_loop();
  /// Picks the runnable request with the least virtual time (ties to the
  /// lowest id) and claims its next chunk. Stride scheduling: each claim
  /// advances the request's vtime by kStrideScale / priority, so over
  /// time requests receive chunk slots proportional to their priority.
  bool claim_locked(std::shared_ptr<RequestState>* out_req,
                    std::size_t* out_chunk);
  void retire_locked(const std::shared_ptr<RequestState>& req);
  std::uint64_t estimate_retry_ms_locked() const;
  campaign::CampaignResult assemble_result(const RequestState& req) const;

  SchedulerOptions options_;
  obs::ServiceStats* stats_;
  snapshot::SnapshotCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  /// Every live request, keyed by id — std::map so claim_locked's
  /// tie-break iteration is ordered (and lint-clean by construction).
  std::map<std::uint64_t, std::shared_ptr<RequestState>> requests_;
  std::deque<std::uint64_t> pending_;  ///< admitted, waiting for a slot
  std::size_t active_count_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t global_vtime_ = 0;
  double avg_chunk_ms_ = 50.0;  ///< EWMA; seeds the retry-after estimate
  /// Terminal callbacks (on_complete / on_cancelled) being emitted
  /// outside the lock. The request is already retired from requests_ at
  /// that point, so drain() must wait for this to reach zero too —
  /// otherwise it could return before the last report was delivered.
  std::size_t emitting_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hs::serve
